package blgen

import (
	"testing"

	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/ripeatlas"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(TestParams(3))
	b := Generate(TestParams(3))
	if len(a.ASes) != len(b.ASes) || len(a.BTUsers) != len(b.BTUsers) ||
		len(a.Campaigns) != len(b.Campaigns) || len(a.RIPELogs) != len(b.RIPELogs) {
		t.Fatal("world sizes differ between identical seeds")
	}
	la, lb := a.Collection.Listings(), b.Collection.Listings()
	if len(la) != len(lb) {
		t.Fatalf("listings differ: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("listing %d differs", i)
		}
	}
	c := Generate(TestParams(4))
	if len(c.Campaigns) == len(a.Campaigns) && len(c.BTUsers) == len(a.BTUsers) {
		t.Error("different seeds produced identical world sizes (suspicious)")
	}
}

func TestTopologyInvariants(t *testing.T) {
	w := Generate(TestParams(1))
	seen := iputil.NewPrefixSet()
	for _, a := range w.ASes {
		if len(a.Prefixes) == 0 {
			t.Errorf("AS %d has no prefixes", a.ASN)
		}
		for _, pi := range a.Prefixes {
			if pi.ASN != a.ASN {
				t.Errorf("prefix %v has ASN %d, in AS %d", pi.Prefix, pi.ASN, a.ASN)
			}
			if pi.Prefix.Bits() != 24 {
				t.Errorf("prefix %v is not a /24", pi.Prefix)
			}
			if !seen.Add(pi.Prefix) {
				t.Errorf("prefix %v allocated twice", pi.Prefix)
			}
			if pi.Kind == KindDynamic && pi.MeanLeaseHours <= 0 {
				t.Errorf("dynamic prefix %v has no lease churn", pi.Prefix)
			}
		}
	}
}

func TestPrefixTableConsistency(t *testing.T) {
	w := Generate(TestParams(2))
	for _, a := range w.ASes {
		for _, pi := range a.Prefixes {
			got, ok := w.PrefixOf(pi.Prefix.Nth(100))
			if !ok || got.Prefix != pi.Prefix {
				t.Fatalf("PrefixOf(%v) = %v, %v", pi.Prefix.Nth(100), got, ok)
			}
		}
	}
	if _, ok := w.PrefixOf(iputil.MustParseAddr("1.2.3.4")); ok {
		t.Error("lookup outside the world succeeded")
	}
}

func TestNATTruthInvariants(t *testing.T) {
	w := Generate(TestParams(5))
	if len(w.NATs) == 0 {
		t.Fatal("no NATs generated")
	}
	for _, n := range w.NATs {
		if n.BTUsers > n.TotalUsers {
			t.Errorf("NAT %v: BT users %d > total %d", n.Addr, n.BTUsers, n.TotalUsers)
		}
		if n.TotalUsers < 2 {
			t.Errorf("NAT %v: only %d users", n.Addr, n.TotalUsers)
		}
		pi, ok := w.PrefixOf(n.Addr)
		if !ok || pi.Kind != KindCGN {
			t.Errorf("NAT %v not in CGN space", n.Addr)
		}
		if w.NATByIP[n.Addr] != n {
			t.Errorf("NATByIP inconsistent for %v", n.Addr)
		}
	}
}

func TestBTUserInvariants(t *testing.T) {
	w := Generate(TestParams(6))
	if len(w.BTUsers) == 0 {
		t.Fatal("no BT users")
	}
	natUsers := map[iputil.Addr]int{}
	for _, u := range w.BTUsers {
		if u.BehindNAT {
			natUsers[u.PublicAddr]++
			if _, ok := w.NATByIP[u.PublicAddr]; !ok {
				t.Errorf("NATed user %d at non-NAT address %v", u.ID, u.PublicAddr)
			}
		} else if u.PublicAddr != u.PrivateAddr {
			t.Errorf("public user %d has distinct private address", u.ID)
		}
	}
	for addr, count := range natUsers {
		if truth := w.NATByIP[addr]; truth.BTUsers != count {
			t.Errorf("NAT %v: %d instantiated BT users, truth says %d", addr, count, truth.BTUsers)
		}
	}
}

func TestCampaignInvariants(t *testing.T) {
	w := Generate(TestParams(7))
	n := len(w.Params.Days)
	for _, c := range w.Campaigns {
		if c.StartDay < 0 || c.EndDay >= n || c.StartDay > c.EndDay {
			t.Fatalf("campaign span [%d, %d] outside [0, %d)", c.StartDay, c.EndDay, n)
		}
		if c.Actor == ActorDynamic {
			if c.LeaseDays < 1 {
				t.Fatal("dynamic campaign without lease")
			}
			for d := c.StartDay; d <= c.EndDay; d++ {
				if !c.Pool.Contains(c.AddrOnDay(d)) {
					t.Fatalf("dynamic campaign escaped its pool on day %d", d)
				}
			}
		} else if c.AddrOnDay(c.StartDay) != c.Addr {
			t.Fatal("fixed-address campaign moved")
		}
	}
}

func TestDynamicCampaignChangesAddresses(t *testing.T) {
	w := Generate(TestParams(8))
	for _, c := range w.Campaigns {
		if c.Actor != ActorDynamic || c.LeaseDays != 1 || c.EndDay-c.StartDay < 5 {
			continue
		}
		distinct := map[iputil.Addr]bool{}
		for d := c.StartDay; d <= c.EndDay; d++ {
			distinct[c.AddrOnDay(d)] = true
		}
		if len(distinct) < 2 {
			t.Errorf("daily-lease campaign used %d address(es) over %d days",
				len(distinct), c.EndDay-c.StartDay+1)
		}
		return // one good specimen is enough
	}
	t.Skip("no long daily-lease campaign in this tiny world")
}

func TestRIPEPipelineFindsWorldPools(t *testing.T) {
	p := TestParams(9)
	p.Scale = 0.3 // enough probes for the pipeline to bite
	w := Generate(p)
	res := ripeatlas.Detect(w.RIPELogs, ripeatlas.DetectOptions{})
	if res.TotalProbes == 0 {
		t.Fatal("no probes in logs")
	}
	// Every detected dynamic prefix must be a true dynamic pool.
	for _, pref := range res.DynamicPrefixes.Sorted() {
		if !w.TrueAnyDynamic.Contains(pref) {
			t.Errorf("pipeline flagged non-dynamic prefix %v", pref)
		}
	}
	// And it should find at least one fast pool.
	found := 0
	for _, pref := range res.DynamicPrefixes.Sorted() {
		if w.TrueFastDynamic.Contains(pref) {
			found++
		}
	}
	if found == 0 {
		t.Error("pipeline found no fast dynamic pools")
	}
}

func TestRespondsContract(t *testing.T) {
	w := Generate(TestParams(10))
	at := w.RIPEStart.AddDate(0, 1, 0)
	var cgn, server *PrefixInfo
	for _, a := range w.ASes {
		for i := range a.Prefixes {
			pi := &a.Prefixes[i]
			if pi.ICMPFiltered {
				if w.Responds(pi.Prefix.Nth(5), at) {
					t.Errorf("ICMP-filtered prefix %v responded", pi.Prefix)
				}
				continue
			}
			switch pi.Kind {
			case KindCGN:
				cgn = pi
			case KindServer:
				server = pi
			}
		}
	}
	if cgn != nil && !w.Responds(cgn.Prefix.Nth(1), at) {
		t.Error("CGN gateway (middlebox) should answer pings")
	}
	if server != nil && !w.Responds(server.Prefix.Nth(10), at) {
		t.Error("server space should answer pings")
	}
	// Outside the world: silence.
	if w.Responds(iputil.MustParseAddr("8.8.8.8"), at) {
		t.Error("address outside the world responded")
	}
}

func TestCollectionPopulated(t *testing.T) {
	w := Generate(TestParams(11))
	if w.Collection.AllAddrs().Len() == 0 {
		t.Fatal("no blocklisted addresses")
	}
	if w.Collection.DaysObserved() == 0 {
		t.Fatal("no observation days recorded")
	}
	// Every listing's address must be inside the world.
	for _, l := range w.Collection.Listings() {
		if _, ok := w.PrefixOf(l.Addr); !ok {
			t.Fatalf("listed address %v outside the world", l.Addr)
		}
		if l.Days < 1 || l.Days > len(w.Params.Days) {
			t.Fatalf("listing days = %d", l.Days)
		}
	}
}

// TestDefaultWorldShapes is the calibration regression: the default world
// must keep the paper's headline shapes (loose bounds).
func TestDefaultWorldShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("default world generation in -short mode")
	}
	w := Generate(DefaultParams(1))

	detectable := func(a iputil.Addr) bool {
		n, ok := w.NATByIP[a]
		return ok && n.BTUsers >= 2 && !n.Restricted
	}
	all := w.Collection.AllAddrs()
	natBL, dynBL := 0, 0
	for _, a := range all.Sorted() {
		if detectable(a) {
			natBL++
		}
		if w.TrueFastDynamic.Covers(a) {
			dynBL++
		}
	}
	if natBL < 100 {
		t.Errorf("NATed∩blocklisted = %d, want a usable population", natBL)
	}
	if dynBL < 500 {
		t.Errorf("dynamic∩blocklisted = %d", dynBL)
	}

	zeroNAT, zeroDyn := 0, 0
	for fi := range w.Registry.Feeds {
		hasNAT, hasDyn := false, false
		for _, a := range w.Collection.FeedAddrs(fi).Sorted() {
			if detectable(a) {
				hasNAT = true
			}
			if w.TrueFastDynamic.Covers(a) {
				hasDyn = true
			}
		}
		if !hasNAT {
			zeroNAT++
		}
		if !hasDyn {
			zeroDyn++
		}
	}
	nFeeds := float64(w.Registry.Len())
	if fr := float64(zeroNAT) / nFeeds; fr < 0.25 || fr > 0.60 {
		t.Errorf("feeds without NATed addresses = %.0f%%, paper ≈ 40%%", fr*100)
	}
	if fr := float64(zeroDyn) / nFeeds; fr < 0.30 || fr > 0.65 {
		t.Errorf("feeds without dynamic addresses = %.0f%%, paper ≈ 47%%", fr*100)
	}

	// Duration ordering (Fig 7): dynamic << all ≈ NAT, and NAT listings are
	// removed within two days more often than the average listing.
	mean := func(sel func(iputil.Addr) bool) (m float64, le2 float64) {
		n, sum, short := 0, 0, 0
		for _, l := range w.Collection.Listings() {
			if !sel(l.Addr) {
				continue
			}
			n++
			sum += l.Days
			if l.Days <= 2 {
				short++
			}
		}
		if n == 0 {
			return 0, 0
		}
		return float64(sum) / float64(n), float64(short) / float64(n)
	}
	allMean, allLe2 := mean(func(iputil.Addr) bool { return true })
	natMean, natLe2 := mean(detectable)
	dynMean, dynLe2 := mean(w.TrueFastDynamic.Covers)
	if !(dynMean < natMean && dynMean < allMean) {
		t.Errorf("duration ordering broken: all=%.1f nat=%.1f dyn=%.1f", allMean, natMean, dynMean)
	}
	if !(dynLe2 > natLe2 && natLe2 > allLe2) {
		t.Errorf("2-day removal ordering broken: all=%.2f nat=%.2f dyn=%.2f", allLe2, natLe2, dynLe2)
	}
	if allMean < 6 || allMean > 13 {
		t.Errorf("all-listing mean duration = %.1f days, paper ≈ 9", allMean)
	}
}
