package dht

// splitmixSource is a rand.Source64 with eight bytes of state, standing in
// for math/rand's default lagged-Fibonacci source when Config.CompactRNG is
// set. The default source carries a 607-word (4.9 KiB) table per instance —
// by far the largest allocation of a simulated DHT node — which is fine for
// thousands of hosts and fatal for millions. splitmix64 (Steele et al.,
// "Fast Splittable Pseudorandom Number Generators") passes BigCrush and is
// the usual seeding primitive for xoshiro-family generators; a per-node
// statistical RNG for jitter and identifier draws needs nothing stronger.
//
// The draw sequence differs from the default source, so swapping it changes
// simulation outcomes: default-scale worlds keep the legacy source (their
// goldens pin its sequence) and only Compact worlds use this.
type splitmixSource struct {
	state uint64
}

func newSplitmixSource(seed int64) *splitmixSource {
	return &splitmixSource{state: uint64(seed)}
}

func (s *splitmixSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmixSource) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

func (s *splitmixSource) Seed(seed int64) {
	s.state = uint64(seed)
}
