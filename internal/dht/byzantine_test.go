package dht

import (
	"testing"

	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/krpc"
	"github.com/reuseblock/reuseblock/internal/netsim"
)

// newByzantineNode is newNode with the adversarial flag set.
func (w *simWorld) newByzantineNode(t *testing.T, addr string, port uint16, seed int64) *Node {
	t.Helper()
	sock, err := w.net.Listen(netsim.Endpoint{Addr: iputil.MustParseAddr(addr), Port: port})
	if err != nil {
		t.Fatal(err)
	}
	return NewNode(sock, SimClock(w.clock), Config{
		PrivateIP: iputil.MustParseAddr(addr),
		IDSeed:    uint64(seed),
		Seed:      seed,
		Byzantine: true,
	})
}

func TestByzantineFindNodeFabricates(t *testing.T) {
	w := newSimWorld(t)
	server := w.newByzantineNode(t, "10.0.0.1", 6881, 1)
	// Give the server real table entries it should NOT reveal.
	real := map[krpc.NodeID]bool{}
	for i := 0; i < 10; i++ {
		var id krpc.NodeID
		id[0] = byte(i + 1)
		real[id] = true
		server.AddNode(krpc.NodeInfo{ID: id, Addr: iputil.AddrFrom4(10, 0, 1, byte(i+1)), Port: 6881})
	}
	client := w.newNode(t, "10.0.0.2", 6881, 2)
	var got []krpc.NodeInfo
	client.FindNode(endpointOf(server), krpc.NodeID{}, func(m *krpc.Message, err error) {
		if err != nil {
			t.Errorf("find_node: %v", err)
			return
		}
		got = m.Nodes
	})
	w.clock.Drain(0)
	if len(got) != BucketSize {
		t.Fatalf("got %d fabricated nodes, want %d", len(got), BucketSize)
	}
	for _, info := range got {
		if real[info.ID] {
			t.Fatalf("byzantine response leaked real table entry %v", info.ID)
		}
	}
	// Pings stay honest: the node keeps itself reachable.
	answered := false
	client.Ping(endpointOf(server), func(m *krpc.Message, err error) {
		answered = err == nil && m.ID == server.ID()
	})
	w.clock.Drain(0)
	if !answered {
		t.Fatal("byzantine node did not answer ping honestly")
	}
}

func TestByzantineDeterministic(t *testing.T) {
	fabricate := func() []krpc.NodeInfo {
		w := newSimWorld(t)
		server := w.newByzantineNode(t, "10.0.0.1", 6881, 9)
		client := w.newNode(t, "10.0.0.2", 6881, 2)
		var got []krpc.NodeInfo
		client.FindNode(endpointOf(server), krpc.NodeID{}, func(m *krpc.Message, err error) {
			if m != nil {
				got = m.Nodes
			}
		})
		w.clock.Drain(0)
		return got
	}
	a, b := fabricate(), fabricate()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("fabricated %d vs %d nodes", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fabrication diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
