package dht

import (
	"sort"
	"time"

	"github.com/reuseblock/reuseblock/internal/krpc"
	"github.com/reuseblock/reuseblock/internal/netsim"
)

// BucketSize is Kademlia's k: the per-bucket capacity and the number of
// neighbours returned by find_node. The paper notes a new BitTorrent user
// learns eight neighbours — this constant.
const BucketSize = 8

type tableEntry struct {
	info     krpc.NodeInfo
	lastSeen time.Time
}

// routingTable is a fixed 160-bucket Kademlia table keyed by XOR distance
// from the owner's ID.
type routingTable struct {
	self    krpc.NodeID
	buckets [160][]tableEntry
	// staleAfter is how long an entry may go unseen before a newcomer may
	// evict it. Real tables ping before evicting; the simplification keeps
	// stale entries around, which is exactly the "stale information"
	// phenomenon the crawler must disambiguate (§3.1).
	staleAfter time.Duration
}

func newRoutingTable(self krpc.NodeID, staleAfter time.Duration) *routingTable {
	if staleAfter <= 0 {
		staleAfter = 15 * time.Minute
	}
	return &routingTable{self: self, staleAfter: staleAfter}
}

// add inserts or refreshes a node; full buckets evict their most stale entry
// only if it is older than staleAfter.
func (rt *routingTable) add(info krpc.NodeInfo, now time.Time) {
	idx := rt.self.BucketIndex(info.ID)
	if idx < 0 {
		return // ourselves
	}
	bucket := rt.buckets[idx]
	for i := range bucket {
		if bucket[i].info.ID == info.ID {
			// Same node; update endpoint (it may have rebooted onto a
			// new port) and refresh.
			bucket[i].info = info
			bucket[i].lastSeen = now
			return
		}
	}
	if len(bucket) < BucketSize {
		rt.buckets[idx] = append(bucket, tableEntry{info, now})
		return
	}
	oldest := 0
	for i := 1; i < len(bucket); i++ {
		if bucket[i].lastSeen.Before(bucket[oldest].lastSeen) {
			oldest = i
		}
	}
	if now.Sub(bucket[oldest].lastSeen) > rt.staleAfter {
		bucket[oldest] = tableEntry{info, now}
	}
}

// closest returns up to n nodes closest to target by XOR distance.
func (rt *routingTable) closest(target krpc.NodeID, n int) []krpc.NodeInfo {
	var all []krpc.NodeInfo
	for i := range rt.buckets {
		for _, e := range rt.buckets[i] {
			all = append(all, e.info)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		return all[i].ID.Less(all[j].ID, target)
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// size returns the number of entries in the table.
func (rt *routingTable) size() int {
	n := 0
	for i := range rt.buckets {
		n += len(rt.buckets[i])
	}
	return n
}

// randomEntry returns an arbitrary entry for keepalive pings; ok is false if
// the table is empty. pick is an arbitrary non-negative selector (callers
// pass rng output) so selection stays deterministic under a seeded RNG.
func (rt *routingTable) randomEntry(pick int) (krpc.NodeInfo, bool) {
	n := rt.size()
	if n == 0 {
		return krpc.NodeInfo{}, false
	}
	pick %= n
	for i := range rt.buckets {
		if pick < len(rt.buckets[i]) {
			return rt.buckets[i][pick].info, true
		}
		pick -= len(rt.buckets[i])
	}
	return krpc.NodeInfo{}, false
}

// endpoints lists the current endpoints in the table; used in tests.
func (rt *routingTable) endpoints() []netsim.Endpoint {
	var out []netsim.Endpoint
	for i := range rt.buckets {
		for _, e := range rt.buckets[i] {
			out = append(out, netsim.Endpoint{Addr: e.info.Addr, Port: e.info.Port})
		}
	}
	return out
}
