package dht

import (
	"sort"
	"time"

	"github.com/reuseblock/reuseblock/internal/krpc"
	"github.com/reuseblock/reuseblock/internal/netsim"
)

// BucketSize is Kademlia's k: the per-bucket capacity and the number of
// neighbours returned by find_node. The paper notes a new BitTorrent user
// learns eight neighbours — this constant.
const BucketSize = 8

type tableEntry struct {
	info     krpc.NodeInfo
	lastSeen time.Time
}

// routingTable is a 160-bucket Kademlia table keyed by XOR distance from
// the owner's ID. Storage is sparse: a simulated node only ever populates a
// handful of bucket indices (mesh degree 8 plus keepalive churn), so the
// table keeps a sorted list of occupied indices instead of a fixed
// [160][]tableEntry — that fixed array alone cost 3.8 KiB of slice headers
// per node, a third of the per-host footprint at paper scale. All walks run
// in ascending bucket index, exactly the order the fixed array gave, so
// eviction, keepalive selection, and closest() collection are unchanged.
type routingTable struct {
	self krpc.NodeID
	occ  []uint8        // sorted occupied bucket indices (0..159)
	bkts [][]tableEntry // parallel to occ
	// staleAfter is how long an entry may go unseen before a newcomer may
	// evict it. Real tables ping before evicting; the simplification keeps
	// stale entries around, which is exactly the "stale information"
	// phenomenon the crawler must disambiguate (§3.1).
	staleAfter time.Duration
}

func newRoutingTable(self krpc.NodeID, staleAfter time.Duration) *routingTable {
	rt := new(routingTable)
	rt.init(self, staleAfter)
	return rt
}

// init prepares an embedded (by-value) table in place.
func (rt *routingTable) init(self krpc.NodeID, staleAfter time.Duration) {
	if staleAfter <= 0 {
		staleAfter = 15 * time.Minute
	}
	rt.self, rt.staleAfter = self, staleAfter
}

// findOcc returns the position of bucket idx in rt.occ and whether it is
// occupied; when absent the position is the insertion point.
func (rt *routingTable) findOcc(idx uint8) (int, bool) {
	lo, hi := 0, len(rt.occ)
	for lo < hi {
		mid := (lo + hi) / 2
		if rt.occ[mid] < idx {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(rt.occ) && rt.occ[lo] == idx
}

// add inserts or refreshes a node; full buckets evict their most stale entry
// only if it is older than staleAfter.
func (rt *routingTable) add(info krpc.NodeInfo, now time.Time) {
	idx := rt.self.BucketIndex(info.ID)
	if idx < 0 {
		return // ourselves
	}
	p, ok := rt.findOcc(uint8(idx))
	if !ok {
		rt.occ = append(rt.occ, 0)
		copy(rt.occ[p+1:], rt.occ[p:])
		rt.occ[p] = uint8(idx)
		rt.bkts = append(rt.bkts, nil)
		copy(rt.bkts[p+1:], rt.bkts[p:])
		rt.bkts[p] = []tableEntry{{info, now}}
		return
	}
	bucket := rt.bkts[p]
	for i := range bucket {
		if bucket[i].info.ID == info.ID {
			// Same node; update endpoint (it may have rebooted onto a
			// new port) and refresh.
			bucket[i].info = info
			bucket[i].lastSeen = now
			return
		}
	}
	if len(bucket) < BucketSize {
		rt.bkts[p] = append(bucket, tableEntry{info, now})
		return
	}
	oldest := 0
	for i := 1; i < len(bucket); i++ {
		if bucket[i].lastSeen.Before(bucket[oldest].lastSeen) {
			oldest = i
		}
	}
	if now.Sub(bucket[oldest].lastSeen) > rt.staleAfter {
		bucket[oldest] = tableEntry{info, now}
	}
}

// closest returns up to n nodes closest to target by XOR distance.
func (rt *routingTable) closest(target krpc.NodeID, n int) []krpc.NodeInfo {
	var all []krpc.NodeInfo
	for i := range rt.bkts {
		for _, e := range rt.bkts[i] {
			all = append(all, e.info)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		return all[i].ID.Less(all[j].ID, target)
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// size returns the number of entries in the table.
func (rt *routingTable) size() int {
	n := 0
	for i := range rt.bkts {
		n += len(rt.bkts[i])
	}
	return n
}

// randomEntry returns an arbitrary entry for keepalive pings; ok is false if
// the table is empty. pick is an arbitrary non-negative selector (callers
// pass rng output) so selection stays deterministic under a seeded RNG.
func (rt *routingTable) randomEntry(pick int) (krpc.NodeInfo, bool) {
	n := rt.size()
	if n == 0 {
		return krpc.NodeInfo{}, false
	}
	pick %= n
	for i := range rt.bkts {
		if pick < len(rt.bkts[i]) {
			return rt.bkts[i][pick].info, true
		}
		pick -= len(rt.bkts[i])
	}
	return krpc.NodeInfo{}, false
}

// endpoints lists the current endpoints in the table; used in tests.
func (rt *routingTable) endpoints() []netsim.Endpoint {
	var out []netsim.Endpoint
	for i := range rt.bkts {
		for _, e := range rt.bkts[i] {
			out = append(out, netsim.Endpoint{Addr: e.info.Addr, Port: e.info.Port})
		}
	}
	return out
}
