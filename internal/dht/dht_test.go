package dht

import (
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/krpc"
	"github.com/reuseblock/reuseblock/internal/netsim"
)

type simWorld struct {
	clock *netsim.Clock
	net   *netsim.Network
}

func newSimWorld(t *testing.T) *simWorld {
	t.Helper()
	clock := netsim.NewClock()
	net, err := netsim.NewNetwork(clock, netsim.Config{LatencyBase: 5 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return &simWorld{clock: clock, net: net}
}

func (w *simWorld) newNode(t *testing.T, addr string, port uint16, seed int64) *Node {
	t.Helper()
	sock, err := w.net.Listen(netsim.Endpoint{Addr: iputil.MustParseAddr(addr), Port: port})
	if err != nil {
		t.Fatal(err)
	}
	return NewNode(sock, SimClock(w.clock), Config{
		PrivateIP: iputil.MustParseAddr(addr),
		IDSeed:    uint64(seed),
		Seed:      seed,
		Version:   "RB01",
	})
}

func endpointOf(n *Node) netsim.Endpoint {
	ep, _ := n.sock.PublicEndpoint()
	return ep
}

func TestPingPong(t *testing.T) {
	w := newSimWorld(t)
	a := w.newNode(t, "10.0.0.1", 6881, 1)
	b := w.newNode(t, "10.0.0.2", 6881, 2)
	var got *krpc.Message
	a.Ping(endpointOf(b), func(m *krpc.Message, err error) {
		if err != nil {
			t.Errorf("ping error: %v", err)
		}
		got = m
	})
	w.clock.Drain(0)
	if got == nil || got.ID != b.ID() {
		t.Fatalf("pong = %+v", got)
	}
	if got.Version != "RB01" {
		t.Errorf("version = %q", got.Version)
	}
	// b learned a from the query.
	if b.TableSize() != 1 {
		t.Errorf("b table = %d", b.TableSize())
	}
}

func TestPingTimeout(t *testing.T) {
	w := newSimWorld(t)
	a := w.newNode(t, "10.0.0.1", 6881, 1)
	var gotErr error
	called := false
	a.Ping(netsim.Endpoint{Addr: iputil.MustParseAddr("10.9.9.9"), Port: 1}, func(m *krpc.Message, err error) {
		called, gotErr = true, err
	})
	w.clock.Drain(0)
	if !called || gotErr != ErrTimeout {
		t.Fatalf("timeout callback: called=%v err=%v", called, gotErr)
	}
	if a.Stats().Timeouts != 1 {
		t.Errorf("Timeouts = %d", a.Stats().Timeouts)
	}
}

func TestFindNodeReturnsClosest(t *testing.T) {
	w := newSimWorld(t)
	server := w.newNode(t, "10.0.0.1", 6881, 1)
	// Seed the server's table with 20 nodes.
	for i := 0; i < 20; i++ {
		var id krpc.NodeID
		id[0] = byte(i + 1)
		server.AddNode(krpc.NodeInfo{ID: id, Addr: iputil.AddrFrom4(10, 0, 1, byte(i+1)), Port: 6881})
	}
	client := w.newNode(t, "10.0.0.2", 6881, 2)
	var got []krpc.NodeInfo
	client.FindNode(endpointOf(server), krpc.NodeID{}, func(m *krpc.Message, err error) {
		if err != nil {
			t.Errorf("find_node: %v", err)
			return
		}
		got = m.Nodes
	})
	w.clock.Drain(0)
	if len(got) != BucketSize {
		t.Fatalf("got %d nodes, want %d", len(got), BucketSize)
	}
	// Responses must be the XOR-closest to the zero target: ids 1..8.
	for _, info := range got {
		if info.ID[0] > BucketSize {
			t.Errorf("node %v is not among the closest", info.ID[0])
		}
	}
}

func TestBootstrapPopulatesTable(t *testing.T) {
	w := newSimWorld(t)
	// A small pre-connected swarm.
	var nodes []*Node
	for i := 0; i < 12; i++ {
		n := w.newNode(t, "10.0.1."+itoa(i+1), 6881, int64(i+10))
		nodes = append(nodes, n)
	}
	// Chain their tables so lookups can traverse.
	for i, n := range nodes {
		for j := 0; j < 4; j++ {
			k := (i + j + 1) % len(nodes)
			n.AddNode(krpc.NodeInfo{ID: nodes[k].ID(), Addr: endpointOf(nodes[k]).Addr, Port: endpointOf(nodes[k]).Port})
		}
	}
	newcomer := w.newNode(t, "10.0.2.1", 6881, 99)
	learnedReported := -1
	newcomer.Bootstrap(endpointOf(nodes[0]), func(learned int) { learnedReported = learned })
	w.clock.Drain(0)
	if newcomer.TableSize() < 8 {
		t.Errorf("bootstrap learned only %d nodes", newcomer.TableSize())
	}
	if learnedReported < newcomer.TableSize() {
		t.Errorf("reported %d < table %d", learnedReported, newcomer.TableSize())
	}
}

func TestKeepaliveRefreshesNATMapping(t *testing.T) {
	w := newSimWorld(t)
	nat, err := netsim.NewNAT(w.net, netsim.NATConfig{
		PublicAddr: iputil.MustParseAddr("100.64.0.1"),
		MappingTTL: 10 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := nat.Listen(iputil.MustParseAddr("192.168.0.5"), 6881)
	if err != nil {
		t.Fatal(err)
	}
	natted := NewNode(inner, SimClock(w.clock), Config{
		PrivateIP:         iputil.MustParseAddr("192.168.0.5"),
		IDSeed:            5,
		Seed:              5,
		KeepaliveInterval: 4 * time.Minute,
	})
	peer := w.newNode(t, "10.0.0.1", 6881, 1)
	// The NATed node pings out once to open its mapping and learn the peer.
	natted.Ping(endpointOf(peer), nil)
	w.clock.RunFor(time.Second)
	pub1, ok := inner.PublicEndpoint()
	if !ok {
		t.Fatal("no mapping after outbound ping")
	}
	// An hour later the keepalives must have held the same mapping open.
	w.clock.RunFor(time.Hour)
	pub2, ok := inner.PublicEndpoint()
	if !ok || pub1 != pub2 {
		t.Errorf("mapping lost or changed: %v -> %v (ok=%v)", pub1, pub2, ok)
	}
}

func TestCloseCancelsPending(t *testing.T) {
	w := newSimWorld(t)
	a := w.newNode(t, "10.0.0.1", 6881, 1)
	called := false
	a.Ping(netsim.Endpoint{Addr: iputil.MustParseAddr("10.9.9.9"), Port: 1}, func(*krpc.Message, error) { called = true })
	a.Close()
	w.clock.Drain(0)
	if called {
		t.Error("pending callback fired after Close")
	}
	a.Close() // idempotent
}

func TestNodeIgnoresGarbage(t *testing.T) {
	w := newSimWorld(t)
	a := w.newNode(t, "10.0.0.1", 6881, 1)
	raw, _ := w.net.Listen(netsim.Endpoint{Addr: iputil.MustParseAddr("10.0.0.2"), Port: 9})
	raw.SetHandler(func(netsim.Endpoint, []byte) {})
	raw.Send(endpointOf(a), []byte("not bencode"))
	w.clock.Drain(0)
	if a.Stats().QueriesReceived != 0 {
		t.Error("garbage counted as query")
	}
}

func TestUnknownMethodGetsError(t *testing.T) {
	w := newSimWorld(t)
	a := w.newNode(t, "10.0.0.1", 6881, 1)
	raw, _ := w.net.Listen(netsim.Endpoint{Addr: iputil.MustParseAddr("10.0.0.2"), Port: 9})
	var resp *krpc.Message
	raw.SetHandler(func(_ netsim.Endpoint, p []byte) {
		m, err := krpc.Unmarshal(p)
		if err == nil {
			resp = m
		}
	})
	// A hand-encoded query with an unknown method (Marshal would refuse it).
	var id krpc.NodeID
	data := []byte("d1:ad2:id20:" + string(id[:]) + "e1:q6:frobml1:t2:zz1:y1:qe")
	if _, err := krpc.Unmarshal(data); err != nil {
		t.Fatalf("test datagram malformed: %v", err)
	}
	raw.Send(endpointOf(a), data)
	w.clock.Drain(0)
	if resp == nil || resp.Kind != krpc.KindError || resp.ErrCode != krpc.ErrCodeMethodUnknown {
		t.Fatalf("resp = %+v, want method-unknown error", resp)
	}
}

func TestAnnounceWithBadTokenRejected(t *testing.T) {
	w := newSimWorld(t)
	a := w.newNode(t, "10.0.0.1", 6881, 1)
	b := w.newNode(t, "10.0.0.2", 6881, 2)
	var infoHash krpc.NodeID
	infoHash[0] = 0xaa
	var resp *krpc.Message
	b.Announce(endpointOf(a), infoHash, 6881, "forged-token", func(m *krpc.Message, err error) {
		if err != nil {
			t.Errorf("announce: %v", err)
		}
		resp = m
	})
	w.clock.Drain(0)
	if resp == nil || resp.Kind != krpc.KindError || resp.ErrCode != krpc.ErrCodeProtocol {
		t.Fatalf("resp = %+v, want bad-token error", resp)
	}
	if len(a.StoredPeers(infoHash)) != 0 {
		t.Error("forged announce stored a peer")
	}
}

func TestGetPeersAnnounceRoundTrip(t *testing.T) {
	w := newSimWorld(t)
	tracker := w.newNode(t, "10.0.0.1", 6881, 1)
	seeder := w.newNode(t, "10.0.0.2", 51413, 2)
	leecher := w.newNode(t, "10.0.0.3", 6881, 3)
	var infoHash krpc.NodeID
	infoHash[5] = 0x77

	// Seeder: get_peers (for the token), then announce.
	var token string
	seeder.GetPeers(endpointOf(tracker), infoHash, func(m *krpc.Message, err error) {
		if err != nil {
			t.Errorf("get_peers: %v", err)
			return
		}
		if len(m.Peers) != 0 {
			t.Errorf("unexpected peers before announce: %v", m.Peers)
		}
		token = m.Token
	})
	w.clock.Drain(0)
	if token == "" {
		t.Fatal("no token from get_peers")
	}
	seeder.Announce(endpointOf(tracker), infoHash, 51413, token, func(m *krpc.Message, err error) {
		if err != nil || m.Kind != krpc.KindResponse {
			t.Errorf("announce failed: %+v, %v", m, err)
		}
	})
	w.clock.Drain(0)
	if got := tracker.StoredPeers(infoHash); len(got) != 1 || got[0].Port != 51413 {
		t.Fatalf("stored peers = %+v", got)
	}

	// Leecher: get_peers now returns the seeder.
	var peers []krpc.Peer
	leecher.GetPeers(endpointOf(tracker), infoHash, func(m *krpc.Message, err error) {
		if err == nil {
			peers = m.Peers
		}
	})
	w.clock.Drain(0)
	if len(peers) != 1 || peers[0].Addr != iputil.MustParseAddr("10.0.0.2") {
		t.Fatalf("peers = %+v", peers)
	}
}

func TestAnnounceImpliedPort(t *testing.T) {
	w := newSimWorld(t)
	tracker := w.newNode(t, "10.0.0.1", 6881, 1)
	seeder := w.newNode(t, "10.0.0.2", 40000, 2)
	var infoHash krpc.NodeID
	infoHash[1] = 0x42
	var token string
	seeder.GetPeers(endpointOf(tracker), infoHash, func(m *krpc.Message, err error) {
		if err == nil {
			token = m.Token
		}
	})
	w.clock.Drain(0)
	// announce with port 0 + implied: tracker must store the source port.
	msg := krpc.NewAnnouncePeer("ti", seeder.ID(), infoHash, 0, token)
	msg.ImpliedPort = true
	data, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	seeder.sock.Send(endpointOf(tracker), data)
	w.clock.Drain(0)
	got := tracker.StoredPeers(infoHash)
	if len(got) != 1 || got[0].Port != 40000 {
		t.Fatalf("stored peers = %+v, want source port 40000", got)
	}
}

func TestPeerStoreExpiry(t *testing.T) {
	w := newSimWorld(t)
	tracker := w.newNode(t, "10.0.0.1", 6881, 1)
	seeder := w.newNode(t, "10.0.0.2", 51413, 2)
	var infoHash krpc.NodeID
	infoHash[2] = 9
	var token string
	seeder.GetPeers(endpointOf(tracker), infoHash, func(m *krpc.Message, err error) {
		if err == nil {
			token = m.Token
		}
	})
	w.clock.Drain(0)
	seeder.Announce(endpointOf(tracker), infoHash, 51413, token, nil)
	w.clock.Drain(0)
	if len(tracker.StoredPeers(infoHash)) != 1 {
		t.Fatal("announce not stored")
	}
	// After the TTL (default 2h) the peer expires.
	w.clock.RunFor(3 * time.Hour)
	if got := tracker.StoredPeers(infoHash); len(got) != 0 {
		t.Errorf("expired peers still served: %+v", got)
	}
}

func TestTokenExpiresAcrossEpochs(t *testing.T) {
	w := newSimWorld(t)
	tracker := w.newNode(t, "10.0.0.1", 6881, 1)
	seeder := w.newNode(t, "10.0.0.2", 51413, 2)
	var infoHash krpc.NodeID
	infoHash[3] = 9
	var token string
	seeder.GetPeers(endpointOf(tracker), infoHash, func(m *krpc.Message, err error) {
		if err == nil {
			token = m.Token
		}
	})
	w.clock.Drain(0)
	// Two full rotation periods later the token must be rejected.
	w.clock.RunFor(11 * time.Minute)
	var resp *krpc.Message
	seeder.Announce(endpointOf(tracker), infoHash, 51413, token, func(m *krpc.Message, err error) {
		if err == nil {
			resp = m
		}
	})
	w.clock.Drain(0)
	if resp == nil || resp.Kind != krpc.KindError {
		t.Fatalf("stale token accepted: %+v", resp)
	}
}

func TestLookupPeersTraversesSwarm(t *testing.T) {
	w := newSimWorld(t)
	var nodes []*Node
	for i := 0; i < 10; i++ {
		nodes = append(nodes, w.newNode(t, "10.0.3."+itoa(i+1), 6881, int64(i+30)))
	}
	for i, n := range nodes {
		for j := 1; j <= 3; j++ {
			k := (i + j) % len(nodes)
			n.AddNode(krpc.NodeInfo{ID: nodes[k].ID(), Addr: endpointOf(nodes[k]).Addr, Port: endpointOf(nodes[k]).Port})
		}
	}
	var infoHash krpc.NodeID
	infoHash[0] = 0x0f
	// Announce on node 7 directly via its store for the lookup to find.
	seeder := w.newNode(t, "10.0.4.1", 51413, 99)
	var token string
	seeder.GetPeers(endpointOf(nodes[7]), infoHash, func(m *krpc.Message, err error) {
		if err == nil {
			token = m.Token
		}
	})
	w.clock.Drain(0)
	seeder.Announce(endpointOf(nodes[7]), infoHash, 51413, token, nil)
	w.clock.Drain(0)

	var found []krpc.Peer
	done := false
	nodes[0].LookupPeers(infoHash, func(peers []krpc.Peer) {
		found, done = peers, true
	})
	w.clock.Drain(0)
	if !done {
		t.Fatal("lookup never converged")
	}
	if len(found) != 1 || found[0].Port != 51413 {
		t.Fatalf("lookup peers = %+v", found)
	}
}

func TestRoutingTableEviction(t *testing.T) {
	var self krpc.NodeID
	rt := newRoutingTable(self, time.Minute)
	now := netsim.Epoch
	// Fill one bucket: IDs with top bit set land in bucket 159.
	for i := 0; i < BucketSize; i++ {
		var id krpc.NodeID
		id[0] = 0x80
		id[19] = byte(i)
		rt.add(krpc.NodeInfo{ID: id, Addr: iputil.Addr(i), Port: 1}, now)
	}
	if rt.size() != BucketSize {
		t.Fatalf("size = %d", rt.size())
	}
	var extra krpc.NodeID
	extra[0] = 0x80
	extra[19] = 0xff
	// Fresh bucket: newcomer rejected.
	rt.add(krpc.NodeInfo{ID: extra, Addr: iputil.Addr(99), Port: 1}, now.Add(time.Second))
	if rt.size() != BucketSize {
		t.Fatalf("bucket overflowed")
	}
	found := false
	for _, e := range rt.closest(extra, BucketSize) {
		if e.ID == extra {
			found = true
		}
	}
	if found {
		t.Error("newcomer should have been rejected from fresh bucket")
	}
	// After staleness, newcomer evicts the oldest.
	rt.add(krpc.NodeInfo{ID: extra, Addr: iputil.Addr(99), Port: 1}, now.Add(time.Hour))
	found = false
	for _, e := range rt.closest(extra, BucketSize) {
		if e.ID == extra {
			found = true
		}
	}
	if !found {
		t.Error("newcomer should evict stale entry")
	}
}

func TestRoutingTableUpdatesEndpointOnRejoin(t *testing.T) {
	var self krpc.NodeID
	rt := newRoutingTable(self, time.Minute)
	var id krpc.NodeID
	id[0] = 0x40
	rt.add(krpc.NodeInfo{ID: id, Addr: 7, Port: 1000}, netsim.Epoch)
	rt.add(krpc.NodeInfo{ID: id, Addr: 7, Port: 2000}, netsim.Epoch.Add(time.Second))
	if rt.size() != 1 {
		t.Fatalf("size = %d", rt.size())
	}
	if got := rt.closest(id, 1)[0].Port; got != 2000 {
		t.Errorf("port = %d, want updated 2000", got)
	}
}

func TestRandomEntryCoverage(t *testing.T) {
	var self krpc.NodeID
	rt := newRoutingTable(self, time.Minute)
	if _, ok := rt.randomEntry(3); ok {
		t.Error("empty table returned an entry")
	}
	for i := 1; i <= 3; i++ {
		var id krpc.NodeID
		id[0] = byte(i << 4)
		rt.add(krpc.NodeInfo{ID: id, Addr: iputil.Addr(i), Port: 1}, netsim.Epoch)
	}
	seen := map[iputil.Addr]bool{}
	for pick := 0; pick < 30; pick++ {
		info, ok := rt.randomEntry(pick)
		if !ok {
			t.Fatal("entry expected")
		}
		seen[info.Addr] = true
	}
	if len(seen) != 3 {
		t.Errorf("randomEntry reached %d of 3 entries", len(seen))
	}
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}
