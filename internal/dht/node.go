package dht

import (
	"encoding/binary"
	"math/rand"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/krpc"
	"github.com/reuseblock/reuseblock/internal/netsim"
)

// Config tunes a DHT node.
type Config struct {
	// ID is the node's identity; zero means "derive from IDSeed".
	ID krpc.NodeID
	// IDSeed feeds GenerateNodeID when ID is zero; combined with the
	// node's (possibly private) IP the way real clients do.
	IDSeed uint64
	// PrivateIP is the address hashed into the node ID; for NATed users
	// this is the RFC 1918 address, so siblings behind one NAT still get
	// distinct IDs.
	PrivateIP iputil.Addr
	// Version is the client version string placed in responses ("v" key).
	Version string
	// QueryTimeout bounds how long an issued query waits for a response.
	QueryTimeout time.Duration
	// KeepaliveInterval is how often the node pings a random routing-table
	// entry. Besides table maintenance, this outbound traffic is what
	// keeps a NAT mapping alive. Zero disables keepalives.
	KeepaliveInterval time.Duration
	// TableStaleAfter configures routing-table eviction.
	TableStaleAfter time.Duration
	// BootstrapAttempts is how many times Bootstrap retries when a round
	// learns no nodes (UDP loss makes single-shot bootstraps flaky);
	// zero means 5, matching real clients' persistence.
	BootstrapAttempts int
	// BootstrapRetryDelay separates bootstrap attempts; zero means 1 minute.
	BootstrapRetryDelay time.Duration
	// PeerTTL is how long an announced peer is served before expiring;
	// zero means 2 hours.
	PeerTTL time.Duration
	// PeersPerHash caps stored announces per info-hash; zero means 64.
	PeersPerHash int
	// TokenRotation is the write-token secret rotation period; zero means
	// 5 minutes (BEP 5: tokens older than ten minutes are rejected).
	TokenRotation time.Duration
	// Seed drives the node's private RNG (transaction IDs, keepalive
	// target choice).
	Seed int64
	// CompactRNG swaps the node's private RNG source for an 8-byte
	// splitmix64 state instead of math/rand's 4.9 KiB lagged-Fibonacci
	// table. The draw sequence differs, so default worlds (whose goldens
	// pin the legacy sequence) leave this off; paper-scale worlds turn it
	// on, where it removes the single largest per-host allocation.
	CompactRNG bool
	// Byzantine makes the node adversarial: it answers find_node with
	// fabricated neighbours drawn from its RNG instead of routing-table
	// contents, poisoning crawlers' discovery frontiers with phantom
	// endpoints. All other behaviour (pings, announces) stays honest, as a
	// real poisoning node would keep itself reachable.
	Byzantine bool
	// ByzantineNodes is how many fabricated neighbours each byzantine
	// find_node response carries; zero means BucketSize.
	ByzantineNodes int
}

// Stats counts node activity.
type Stats struct {
	QueriesReceived   int64
	ResponsesSent     int64
	QueriesSent       int64
	ResponsesReceived int64
	Timeouts          int64
}

// Node is a DHT participant bound to one socket.
type Node struct {
	id    krpc.NodeID
	cfg   Config
	sock  netsim.Socket
	clock Clock
	rng   *rand.Rand
	table routingTable // by value: one less pointer and heap object per node
	// pending maps transaction IDs to in-flight queries by value and is
	// allocated lazily on the first outgoing query: a pendingQuery is two
	// function words, and most simulated swarm nodes never issue a query
	// at all (only NATed keepalive pings and restart rejoins do), so the
	// common case carries no map.
	pending map[string]pendingQuery
	// store is embedded by value with a lazily allocated map: most
	// simulated nodes never receive an announce, so they never pay for the
	// byHash map header.
	store     peerStore
	tokenBase uint64 // node-private seed for write-token secrets
	stats     Stats
	closed    bool
	stopKA    func() bool
}

type pendingQuery struct {
	done     func(*krpc.Message, error)
	stopTime func() bool
}

// ErrTimeout is delivered to query callbacks when no response arrives.
var ErrTimeout = timeoutError{}

type timeoutError struct{}

func (timeoutError) Error() string { return "dht: query timed out" }

// NewNode creates a node on the given socket and installs its handler. The
// node is immediately able to answer queries; call Bootstrap to populate its
// routing table.
func NewNode(sock netsim.Socket, clock Clock, cfg Config) *Node {
	return newNode(func() *Node { return new(Node) }, sock, clock, cfg)
}

func newNode(alloc func() *Node, sock netsim.Socket, clock Clock, cfg Config) *Node {
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = 2 * time.Second
	}
	id := cfg.ID
	if id == (krpc.NodeID{}) {
		id = krpc.GenerateNodeID(cfg.PrivateIP, cfg.IDSeed)
	}
	src := rand.NewSource(cfg.Seed)
	if cfg.CompactRNG {
		src = newSplitmixSource(cfg.Seed)
	}
	n := alloc()
	*n = Node{
		id:    id,
		cfg:   cfg,
		sock:  sock,
		clock: clock,
		rng:   rand.New(src),
		store: newPeerStore(cfg.PeerTTL, cfg.PeersPerHash),
	}
	n.table.init(id, cfg.TableStaleAfter)
	n.tokenBase = n.rng.Uint64()
	sock.SetHandler(n.handle)
	if cfg.KeepaliveInterval > 0 {
		n.scheduleKeepalive()
	}
	return n
}

// NodeArena allocates Nodes in fixed-size chunks. Chunks are never
// reallocated, so *Node pointers stay stable for the arena's lifetime; a
// million-node swarm becomes ~a thousand slab allocations the garbage
// collector tracks instead of a million individually-header'd objects. The
// zero value is ready for use; arenas are not safe for concurrent use (the
// world builder is single-threaded per swarm).
type NodeArena struct {
	chunks [][]Node
	used   int // slots consumed in the last chunk
}

const arenaChunk = 1024

// NewNode is NewNode allocating from the arena.
func (a *NodeArena) NewNode(sock netsim.Socket, clock Clock, cfg Config) *Node {
	return newNode(a.alloc, sock, clock, cfg)
}

func (a *NodeArena) alloc() *Node {
	if len(a.chunks) == 0 || a.used == arenaChunk {
		a.chunks = append(a.chunks, make([]Node, arenaChunk))
		a.used = 0
	}
	n := &a.chunks[len(a.chunks)-1][a.used]
	a.used++
	return n
}

// Len returns how many nodes the arena has handed out.
func (a *NodeArena) Len() int {
	if len(a.chunks) == 0 {
		return 0
	}
	return (len(a.chunks)-1)*arenaChunk + a.used
}

// tokenSecret derives the write-token secret for an epoch offset (0 =
// current, 1 = previous). Secrets rotate with wall/simulated time with no
// timers, keeping large simulated swarms cheap.
func (n *Node) tokenSecret(offset int) uint64 {
	period := n.cfg.TokenRotation
	if period <= 0 {
		period = 5 * time.Minute
	}
	epoch := n.clock.Now().UnixNano()/int64(period) - int64(offset)
	return n.tokenBase ^ uint64(epoch)*0x9e3779b97f4a7c15
}

// ID returns the node's identity.
func (n *Node) ID() krpc.NodeID { return n.id }

// Stats returns a snapshot of activity counters.
func (n *Node) Stats() Stats { return n.stats }

// TableSize returns the routing-table population.
func (n *Node) TableSize() int { return n.table.size() }

// Closest returns up to k routing-table nodes closest to target.
func (n *Node) Closest(target krpc.NodeID, k int) []krpc.NodeInfo {
	return n.table.closest(target, k)
}

// AddNode seeds the routing table directly (used by the world builder to
// pre-populate tables without simulating weeks of organic traffic).
func (n *Node) AddNode(info krpc.NodeInfo) {
	n.table.add(info, n.clock.Now())
}

// Close detaches the node from its socket and cancels timers.
func (n *Node) Close() {
	if n.closed {
		return
	}
	n.closed = true
	if n.stopKA != nil {
		n.stopKA()
	}
	for _, p := range n.pending {
		p.stopTime()
	}
	n.pending = nil
	n.sock.Close()
}

// Ping issues a ping query; done receives the response or an error.
func (n *Node) Ping(to netsim.Endpoint, done func(*krpc.Message, error)) {
	tx := n.newTx()
	msg := krpc.NewPing(tx, n.id)
	n.sendQuery(to, msg, done)
}

// FindNode issues a find_node query for target.
func (n *Node) FindNode(to netsim.Endpoint, target krpc.NodeID, done func(*krpc.Message, error)) {
	tx := n.newTx()
	msg := krpc.NewFindNode(tx, n.id, target)
	n.sendQuery(to, msg, done)
}

// Bootstrap performs an iterative find_node toward the node's own ID using
// entry as the first contact, populating the routing table; it retries up to
// BootstrapAttempts times when a round learns nothing. done fires once the
// lookup converges (or retries are exhausted) with the number of nodes
// learned.
func (n *Node) Bootstrap(entry netsim.Endpoint, done func(learned int)) {
	attempts := n.cfg.BootstrapAttempts
	if attempts <= 0 {
		attempts = 5
	}
	delay := n.cfg.BootstrapRetryDelay
	if delay <= 0 {
		delay = time.Minute
	}
	var attempt func(left int)
	attempt = func(left int) {
		n.bootstrapOnce(entry, func(learned int) {
			if learned == 0 && left > 1 && !n.closed {
				n.clock.After(delay, func() { attempt(left - 1) })
				return
			}
			if done != nil {
				done(learned)
			}
		})
	}
	attempt(attempts)
}

func (n *Node) bootstrapOnce(entry netsim.Endpoint, done func(learned int)) {
	seen := map[krpc.NodeID]bool{n.id: true}
	asked := map[netsim.Endpoint]bool{}
	learned := 0
	inFlight := 0
	var step func(eps []netsim.Endpoint)
	finishIfIdle := func() {
		if inFlight == 0 && done != nil {
			d := done
			done = nil
			d(learned)
		}
	}
	step = func(eps []netsim.Endpoint) {
		for _, ep := range eps {
			if asked[ep] || n.closed {
				continue
			}
			asked[ep] = true
			inFlight++
			n.FindNode(ep, n.id, func(m *krpc.Message, err error) {
				inFlight--
				if err == nil && m != nil {
					var next []netsim.Endpoint
					for _, info := range m.Nodes {
						if !seen[info.ID] {
							seen[info.ID] = true
							learned++
							n.table.add(info, n.clock.Now())
							next = append(next, netsim.Endpoint{Addr: info.Addr, Port: info.Port})
						}
					}
					step(next)
				}
				finishIfIdle()
			})
		}
		finishIfIdle()
	}
	step([]netsim.Endpoint{entry})
}

func (n *Node) sendQuery(to netsim.Endpoint, msg *krpc.Message, done func(*krpc.Message, error)) {
	data, err := msg.Marshal()
	if err != nil {
		if done != nil {
			done(nil, err)
		}
		return
	}
	tx := msg.TxID
	stop := n.clock.After(n.cfg.QueryTimeout, func() {
		if p, ok := n.pending[tx]; ok {
			delete(n.pending, tx)
			n.stats.Timeouts++
			if p.done != nil {
				p.done(nil, ErrTimeout)
			}
		}
	})
	if n.pending == nil {
		n.pending = make(map[string]pendingQuery)
	}
	n.pending[tx] = pendingQuery{done: done, stopTime: stop}
	n.stats.QueriesSent++
	n.sock.Send(to, data)
}

// handle processes an incoming datagram.
func (n *Node) handle(from netsim.Endpoint, payload []byte) {
	if n.closed {
		return
	}
	m, err := krpc.Unmarshal(payload)
	if err != nil {
		return // silently ignore garbage, as real nodes do
	}
	switch m.Kind {
	case krpc.KindQuery:
		n.stats.QueriesReceived++
		n.table.add(krpc.NodeInfo{ID: m.ID, Addr: from.Addr, Port: from.Port}, n.clock.Now())
		n.answer(from, m)
	case krpc.KindResponse, krpc.KindError:
		p, ok := n.pending[m.TxID]
		if !ok {
			return // late or spoofed response
		}
		delete(n.pending, m.TxID)
		p.stopTime()
		if m.Kind == krpc.KindResponse {
			n.stats.ResponsesReceived++
			n.table.add(krpc.NodeInfo{ID: m.ID, Addr: from.Addr, Port: from.Port}, n.clock.Now())
			if p.done != nil {
				p.done(m, nil)
			}
		} else if p.done != nil {
			p.done(m, nil)
		}
	}
}

func (n *Node) answer(from netsim.Endpoint, q *krpc.Message) {
	var resp *krpc.Message
	switch q.Method {
	case krpc.MethodPing:
		resp = krpc.NewPingResponse(q.TxID, n.id, n.cfg.Version)
	case krpc.MethodFindNode:
		nodes := n.table.closest(q.Target, BucketSize)
		if n.cfg.Byzantine {
			nodes = n.fabricateNodes()
		}
		resp = krpc.NewFindNodeResponse(q.TxID, n.id, nodes, n.cfg.Version)
	case krpc.MethodGetPeers:
		peers := n.store.get(q.Target, n.clock.Now())
		nodes := n.table.closest(q.Target, BucketSize)
		token := makeToken(n.tokenSecret(0), uint32(from.Addr))
		resp = krpc.NewGetPeersResponse(q.TxID, n.id, peers, nodes, token, n.cfg.Version)
	case krpc.MethodAnnouncePeer:
		if !n.tokenValid(q.Token, from) {
			resp = krpc.NewError(q.TxID, krpc.ErrCodeProtocol, "Bad Token")
			break
		}
		port := q.AnnPort
		if q.ImpliedPort || port == 0 {
			port = from.Port
		}
		n.store.add(q.Target, krpc.Peer{Addr: from.Addr, Port: port}, n.clock.Now())
		resp = krpc.NewPingResponse(q.TxID, n.id, n.cfg.Version)
	default:
		resp = krpc.NewError(q.TxID, krpc.ErrCodeMethodUnknown, "Method Unknown")
	}
	data, err := resp.Marshal()
	if err != nil {
		return
	}
	n.stats.ResponsesSent++
	n.sock.Send(from, data)
}

// fabricateNodes invents neighbours for a byzantine find_node response:
// random IDs at random addresses and ports, drawn from the node's seeded RNG
// so a byzantine swarm remains deterministic.
func (n *Node) fabricateNodes() []krpc.NodeInfo {
	k := n.cfg.ByzantineNodes
	if k <= 0 {
		k = BucketSize
	}
	out := make([]krpc.NodeInfo, k)
	for i := range out {
		var id krpc.NodeID
		n.rng.Read(id[:])
		out[i] = krpc.NodeInfo{
			ID:   id,
			Addr: iputil.Addr(n.rng.Uint32()),
			Port: uint16(1024 + n.rng.Intn(64000)),
		}
	}
	return out
}

func (n *Node) scheduleKeepalive() {
	n.stopKA = n.clock.After(n.cfg.KeepaliveInterval, func() {
		if n.closed {
			return
		}
		if info, ok := n.table.randomEntry(n.rng.Intn(1 << 30)); ok {
			n.Ping(netsim.Endpoint{Addr: info.Addr, Port: info.Port}, nil)
		}
		n.scheduleKeepalive()
	})
}

func (n *Node) newTx() string {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], n.rng.Uint32())
	return string(b[:])
}
