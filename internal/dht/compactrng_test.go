package dht

import (
	"math/rand"
	"testing"

	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/krpc"
	"github.com/reuseblock/reuseblock/internal/netsim"
)

func TestSplitmixSourceDeterministic(t *testing.T) {
	a := newSplitmixSource(42)
	b := newSplitmixSource(42)
	for i := 0; i < 200; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: same seed diverged: %d != %d", i, av, bv)
		}
	}
	c := newSplitmixSource(43)
	if a.Uint64() == c.Uint64() {
		t.Error("seeds 42 and 43 produced the same next value")
	}
}

func TestSplitmixSourceSeedResets(t *testing.T) {
	s := newSplitmixSource(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Seed(7)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("after re-seed, step %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestSplitmixSourceInt63(t *testing.T) {
	s := newSplitmixSource(1)
	for i := 0; i < 1000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
	// The source must satisfy math/rand's contract well enough to drive a
	// Rand — the exact shape every compact node depends on.
	r := rand.New(newSplitmixSource(1))
	if a, b := r.Intn(1000), r.Intn(1000); a == b {
		// Collisions are possible but a deterministic pair is fine to pin.
		t.Logf("consecutive Intn values collided (%d); acceptable", a)
	}
}

func TestNodeArenaAllocation(t *testing.T) {
	var a NodeArena
	if a.Len() != 0 {
		t.Fatalf("fresh arena Len = %d", a.Len())
	}
	// Cross two chunk boundaries and verify pointer stability throughout.
	const n = 2*arenaChunk + 5
	ptrs := make([]*Node, n)
	for i := range ptrs {
		ptrs[i] = a.alloc()
		ptrs[i].tokenBase = uint64(i) + 1
	}
	if a.Len() != n {
		t.Fatalf("Len = %d, want %d", a.Len(), n)
	}
	for i, p := range ptrs {
		if p.tokenBase != uint64(i)+1 {
			t.Fatalf("slot %d overwritten: tokenBase = %d", i, p.tokenBase)
		}
	}
}

func TestNodeArenaNewNodeCompact(t *testing.T) {
	w := newSimWorld(t)
	var arena NodeArena
	mk := func(addr string, seed int64) *Node {
		sock, err := w.net.Listen(netsim.Endpoint{Addr: iputil.MustParseAddr(addr), Port: 6881})
		if err != nil {
			t.Fatal(err)
		}
		return arena.NewNode(sock, SimClock(w.clock), Config{
			PrivateIP:  iputil.MustParseAddr(addr),
			IDSeed:     uint64(seed),
			Seed:       seed,
			CompactRNG: true,
			Version:    "RB01",
		})
	}
	a := mk("10.1.0.1", 1)
	b := mk("10.1.0.2", 2)
	if arena.Len() != 2 {
		t.Fatalf("arena Len = %d, want 2", arena.Len())
	}
	var got *krpc.Message
	a.Ping(endpointOf(b), func(m *krpc.Message, err error) {
		if err != nil {
			t.Errorf("ping error: %v", err)
		}
		got = m
	})
	w.clock.Drain(0)
	if got == nil || got.ID != b.ID() {
		t.Fatalf("compact arena node did not answer ping: %+v", got)
	}

	// Compact RNG must be a per-node choice with deterministic identity:
	// the same config on a fresh arena yields the same node ID.
	var arena2 NodeArena
	w2 := newSimWorld(t)
	sock, err := w2.net.Listen(netsim.Endpoint{Addr: iputil.MustParseAddr("10.1.0.1"), Port: 6881})
	if err != nil {
		t.Fatal(err)
	}
	a2 := arena2.NewNode(sock, SimClock(w2.clock), Config{
		PrivateIP:  iputil.MustParseAddr("10.1.0.1"),
		IDSeed:     1,
		Seed:       1,
		CompactRNG: true,
		Version:    "RB01",
	})
	if a2.ID() != a.ID() {
		t.Errorf("compact node identity not deterministic: %v != %v", a2.ID(), a.ID())
	}
}

func TestClosestAndTimeoutError(t *testing.T) {
	w := newSimWorld(t)
	n := w.newNode(t, "10.2.0.1", 6881, 1)
	for i := byte(2); i < 12; i++ {
		n.AddNode(krpc.NodeInfo{
			ID:   krpc.GenerateNodeID(iputil.MustParseAddr("10.2.0.1"), uint64(i)),
			Addr: iputil.AddrFrom4(10, 2, 0, i),
			Port: 6881,
		})
	}
	got := n.Closest(n.ID(), 4)
	if len(got) != 4 {
		t.Fatalf("Closest returned %d nodes, want 4", len(got))
	}
	if ErrTimeout.Error() == "" {
		t.Error("ErrTimeout has empty message")
	}
}
