// Package dht implements a BitTorrent Mainline-DHT node (BEP 5): a 160-bit
// node identity, a k-bucket Kademlia routing table, query/response handling
// for ping, find_node and get_peers, and an iterative bootstrap procedure.
//
// Nodes are transport-agnostic: they speak KRPC over any netsim.Socket, so
// the same code runs on the simulated network (the default for experiments)
// and on real UDP sockets (see RealSocket in this package).
package dht

import (
	"sync"
	"time"

	"github.com/reuseblock/reuseblock/internal/netsim"
)

// Clock abstracts time for the DHT node and the crawler so they run
// identically on simulated and wall-clock time.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After schedules fn once after d and returns a stop function that
	// reports whether the event was cancelled before firing.
	After(d time.Duration, fn func()) (stop func() bool)
}

// SimClock adapts a netsim.Clock to the Clock interface.
func SimClock(c *netsim.Clock) Clock { return simClock{c} }

type simClock struct{ c *netsim.Clock }

func (s simClock) Now() time.Time { return s.c.Now() }

func (s simClock) After(d time.Duration, fn func()) func() bool {
	t := s.c.After(d, fn)
	return t.Stop
}

// WallClock returns a Clock backed by real time; timers fire on their own
// goroutines, so callers must provide their own locking (RealSocket does).
func WallClock() Clock { return wallClock{} }

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) After(d time.Duration, fn func()) func() bool {
	t := time.AfterFunc(d, fn)
	var once sync.Once
	return func() bool {
		stopped := false
		once.Do(func() { stopped = t.Stop() })
		return stopped
	}
}
