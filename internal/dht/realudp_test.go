package dht

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/krpc"
	"github.com/reuseblock/reuseblock/internal/netsim"
)

// TestRealUDPPingPong runs two DHT nodes over genuine UDP sockets on
// loopback and verifies a ping round trip — the paper's crawler transport.
func TestRealUDPPingPong(t *testing.T) {
	var mu sync.Mutex
	clock := LockedClock(&mu, WallClock())

	mkNode := func(seed int64) (*Node, netsim.Endpoint) {
		pc, err := net.ListenPacket("udp4", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		sock := NewRealSocket(pc, &mu)
		mu.Lock()
		n := NewNode(sock, clock, Config{IDSeed: uint64(seed), Seed: seed, QueryTimeout: 2 * time.Second})
		mu.Unlock()
		ep, _ := sock.PublicEndpoint()
		return n, ep
	}

	a, _ := mkNode(1)
	b, bep := mkNode(2)
	defer func() {
		mu.Lock()
		a.Close()
		b.Close()
		mu.Unlock()
	}()

	done := make(chan *krpc.Message, 1)
	mu.Lock()
	a.Ping(bep, func(m *krpc.Message, err error) {
		if err != nil {
			t.Errorf("ping: %v", err)
		}
		done <- m
	})
	mu.Unlock()

	select {
	case m := <-done:
		if m == nil || m.ID != b.ID() {
			t.Fatalf("pong = %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no pong over real UDP")
	}
}

func TestRealUDPFindNode(t *testing.T) {
	var mu sync.Mutex
	clock := LockedClock(&mu, WallClock())
	pcA, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pcB, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sockA, sockB := NewRealSocket(pcA, &mu), NewRealSocket(pcB, &mu)
	mu.Lock()
	a := NewNode(sockA, clock, Config{IDSeed: 1, Seed: 1})
	b := NewNode(sockB, clock, Config{IDSeed: 2, Seed: 2})
	var seeded krpc.NodeID
	seeded[0] = 0x55
	b.AddNode(krpc.NodeInfo{ID: seeded, Addr: 0x7f000001, Port: 1})
	mu.Unlock()
	bep, _ := sockB.PublicEndpoint()

	done := make(chan []krpc.NodeInfo, 1)
	mu.Lock()
	a.FindNode(bep, krpc.NodeID{}, func(m *krpc.Message, err error) {
		if err != nil {
			t.Errorf("find_node: %v", err)
			done <- nil
			return
		}
		done <- m.Nodes
	})
	mu.Unlock()
	select {
	case nodes := <-done:
		// b learns a from the query itself, so the reply holds the seeded
		// node plus a's own entry.
		found := false
		for _, n := range nodes {
			if n.ID == seeded {
				found = true
			}
		}
		if !found {
			t.Fatalf("seeded node missing from %+v", nodes)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no find_node response over real UDP")
	}
	mu.Lock()
	a.Close()
	b.Close()
	mu.Unlock()
}
