package dht

import (
	"net"
	"sync"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/netsim"
)

// RealSocket adapts a real net.PacketConn (UDP) to the netsim.Socket
// interface so DHT nodes and the crawler can run on a live network.
//
// Node and crawler code is single-threaded by design; on real sockets,
// incoming packets and timer callbacks arrive on separate goroutines, so
// every RealSocket participating in one logical swarm shares a *sync.Mutex
// that serialises all callbacks. Pair it with LockedClock on the same mutex.
type RealSocket struct {
	pc      net.PacketConn
	mu      *sync.Mutex
	handler netsim.Handler
	closed  bool
	wg      sync.WaitGroup
}

// NewRealSocket wraps pc; mu is the swarm-wide serialisation lock.
func NewRealSocket(pc net.PacketConn, mu *sync.Mutex) *RealSocket {
	s := &RealSocket{pc: pc, mu: mu}
	s.wg.Add(1)
	go s.readLoop()
	return s
}

func (s *RealSocket) readLoop() {
	defer s.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, addr, err := s.pc.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		udp, ok := addr.(*net.UDPAddr)
		if !ok {
			continue
		}
		ip4 := udp.IP.To4()
		if ip4 == nil {
			continue
		}
		from := netsim.Endpoint{
			Addr: iputil.AddrFrom4(ip4[0], ip4[1], ip4[2], ip4[3]),
			Port: uint16(udp.Port),
		}
		payload := make([]byte, n)
		copy(payload, buf[:n])
		s.mu.Lock()
		h, closed := s.handler, s.closed
		if h != nil && !closed {
			h(from, payload)
		}
		s.mu.Unlock()
	}
}

// Send implements netsim.Socket.
func (s *RealSocket) Send(to netsim.Endpoint, payload []byte) {
	oct := to.Addr.Octets()
	dst := &net.UDPAddr{IP: net.IPv4(oct[0], oct[1], oct[2], oct[3]), Port: int(to.Port)}
	_, _ = s.pc.WriteTo(payload, dst) // UDP: errors are equivalent to loss
}

// SetHandler implements netsim.Socket. The caller must hold the swarm
// mutex (Node methods are always invoked under it).
func (s *RealSocket) SetHandler(h netsim.Handler) {
	s.handler = h
}

// PublicEndpoint returns the socket's local address; for sockets behind real
// NATs the mapping is unknowable locally, so ok is true only for directly
// routable binds.
func (s *RealSocket) PublicEndpoint() (netsim.Endpoint, bool) {
	udp, ok := s.pc.LocalAddr().(*net.UDPAddr)
	if !ok {
		return netsim.Endpoint{}, false
	}
	ip4 := udp.IP.To4()
	if ip4 == nil {
		ip4 = net.IPv4(127, 0, 0, 1).To4()
	}
	return netsim.Endpoint{
		Addr: iputil.AddrFrom4(ip4[0], ip4[1], ip4[2], ip4[3]),
		Port: uint16(udp.Port),
	}, true
}

// Close implements netsim.Socket. The caller must hold the swarm mutex. The
// read loop exits asynchronously once the underlying connection unblocks;
// Wait can be used to join it after releasing the mutex.
func (s *RealSocket) Close() {
	if s.closed {
		return
	}
	s.closed = true
	_ = s.pc.Close()
}

// Wait blocks until the read loop has exited. Do not call it while holding
// the swarm mutex.
func (s *RealSocket) Wait() { s.wg.Wait() }

// ListenLoopback binds a fresh UDP socket on 127.0.0.1 (kernel-chosen port)
// and wraps it in a RealSocket sharing mu. It returns the socket and its
// bound endpoint — the standard way the crawler's real mode and the fleet
// control plane obtain loopback sockets.
func ListenLoopback(mu *sync.Mutex) (*RealSocket, netsim.Endpoint, error) {
	pc, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		return nil, netsim.Endpoint{}, err
	}
	s := NewRealSocket(pc, mu)
	ep, _ := s.PublicEndpoint()
	return s, ep, nil
}

// LockedClock wraps a Clock so every timer callback runs while holding mu;
// use with RealSocket for wall-clock swarms.
func LockedClock(mu *sync.Mutex, inner Clock) Clock {
	return lockedClock{mu: mu, inner: inner}
}

type lockedClock struct {
	mu    *sync.Mutex
	inner Clock
}

func (l lockedClock) Now() time.Time { return l.inner.Now() }

func (l lockedClock) After(d time.Duration, fn func()) func() bool {
	return l.inner.After(d, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		fn()
	})
}
