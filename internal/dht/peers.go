package dht

import (
	"crypto/sha1"
	"encoding/binary"
	"time"

	"github.com/reuseblock/reuseblock/internal/krpc"
	"github.com/reuseblock/reuseblock/internal/netsim"
)

// peerStore holds announced peers per info-hash with a TTL and caps, as real
// DHT nodes do (BEP 5 suggests re-announcing at least every ~15 minutes; we
// default to a 2-hour expiry). It embeds by value and allocates byHash only
// on the first announce: in a paper-scale swarm almost no node ever stores
// a peer, so the common case costs zero heap objects.
type peerStore struct {
	byHash  map[krpc.NodeID][]storedPeer
	ttl     time.Duration
	perHash int
}

type storedPeer struct {
	peer krpc.Peer
	at   time.Time
}

func newPeerStore(ttl time.Duration, perHash int) peerStore {
	if ttl <= 0 {
		ttl = 2 * time.Hour
	}
	if perHash <= 0 {
		perHash = 64
	}
	return peerStore{ttl: ttl, perHash: perHash}
}

// add inserts or refreshes a peer for the info-hash.
func (s *peerStore) add(infoHash krpc.NodeID, p krpc.Peer, now time.Time) {
	if s.byHash == nil {
		s.byHash = make(map[krpc.NodeID][]storedPeer)
	}
	list := s.prune(infoHash, now)
	for i := range list {
		if list[i].peer == p {
			list[i].at = now
			s.byHash[infoHash] = list
			return
		}
	}
	if len(list) >= s.perHash {
		// Evict the oldest.
		oldest := 0
		for i := 1; i < len(list); i++ {
			if list[i].at.Before(list[oldest].at) {
				oldest = i
			}
		}
		list[oldest] = storedPeer{peer: p, at: now}
	} else {
		list = append(list, storedPeer{peer: p, at: now})
	}
	s.byHash[infoHash] = list
}

// get returns the unexpired peers for the info-hash.
func (s *peerStore) get(infoHash krpc.NodeID, now time.Time) []krpc.Peer {
	list := s.prune(infoHash, now)
	out := make([]krpc.Peer, 0, len(list))
	for _, sp := range list {
		out = append(out, sp.peer)
	}
	return out
}

func (s *peerStore) prune(infoHash krpc.NodeID, now time.Time) []storedPeer {
	list := s.byHash[infoHash]
	kept := list[:0]
	for _, sp := range list {
		if now.Sub(sp.at) <= s.ttl {
			kept = append(kept, sp)
		}
	}
	if len(kept) == 0 {
		delete(s.byHash, infoHash)
		return nil
	}
	s.byHash[infoHash] = kept
	return kept
}

// makeToken derives the write token handed out in get_peers responses: a
// hash over a rotating secret and the requester's address, so only a host
// that recently asked us from that address can announce (BEP 5).
func makeToken(secret uint64, addr uint32) string {
	var buf [12]byte
	binary.BigEndian.PutUint64(buf[0:8], secret)
	binary.BigEndian.PutUint32(buf[8:12], addr)
	sum := sha1.Sum(buf[:])
	return string(sum[:8])
}

// tokenValid accepts tokens derived from the current or previous rotation
// epoch's secret.
func (n *Node) tokenValid(token string, from netsim.Endpoint) bool {
	return token == makeToken(n.tokenSecret(0), uint32(from.Addr)) ||
		token == makeToken(n.tokenSecret(1), uint32(from.Addr))
}

// GetPeers issues a get_peers query for the info-hash.
func (n *Node) GetPeers(to netsim.Endpoint, infoHash krpc.NodeID, done func(*krpc.Message, error)) {
	n.sendQuery(to, krpc.NewGetPeers(n.newTx(), n.id, infoHash), done)
}

// Announce issues an announce_peer query using a token obtained from a
// prior GetPeers against the same node.
func (n *Node) Announce(to netsim.Endpoint, infoHash krpc.NodeID, port uint16, token string, done func(*krpc.Message, error)) {
	n.sendQuery(to, krpc.NewAnnouncePeer(n.newTx(), n.id, infoHash, port, token), done)
}

// StoredPeers reports the node's current unexpired announces for an
// info-hash (its own storage, not a network lookup).
func (n *Node) StoredPeers(infoHash krpc.NodeID) []krpc.Peer {
	return n.store.get(infoHash, n.clock.Now())
}

// LookupPeers performs an iterative get_peers lookup toward the info-hash,
// collecting peers from every node that has announces; done receives the
// deduplicated peers once the lookup converges.
func (n *Node) LookupPeers(infoHash krpc.NodeID, done func([]krpc.Peer)) {
	asked := map[netsim.Endpoint]bool{}
	seenPeer := map[krpc.Peer]bool{}
	var peers []krpc.Peer
	inFlight := 0
	finishIfIdle := func() {
		if inFlight == 0 && done != nil {
			d := done
			done = nil
			d(peers)
		}
	}
	var step func(eps []netsim.Endpoint)
	step = func(eps []netsim.Endpoint) {
		for _, ep := range eps {
			if asked[ep] || n.closed {
				continue
			}
			asked[ep] = true
			inFlight++
			n.GetPeers(ep, infoHash, func(m *krpc.Message, err error) {
				inFlight--
				if err == nil && m != nil && m.Kind == krpc.KindResponse {
					for _, p := range m.Peers {
						if !seenPeer[p] {
							seenPeer[p] = true
							peers = append(peers, p)
						}
					}
					var next []netsim.Endpoint
					for _, info := range m.Nodes {
						next = append(next, netsim.Endpoint{Addr: info.Addr, Port: info.Port})
					}
					step(next)
				}
				finishIfIdle()
			})
		}
		finishIfIdle()
	}
	start := n.table.closest(infoHash, BucketSize)
	eps := make([]netsim.Endpoint, 0, len(start))
	for _, info := range start {
		eps = append(eps, netsim.Endpoint{Addr: info.Addr, Port: info.Port})
	}
	step(eps)
}
