package krpc

import "testing"

// FuzzUnmarshal feeds arbitrary datagrams to the KRPC decoder: no panics,
// and accepted messages must survive a marshal/unmarshal round trip.
func FuzzUnmarshal(f *testing.F) {
	var id NodeID
	ping, _ := NewPing("aa", id).Marshal()
	fn, _ := NewFindNode("bb", id, id).Marshal()
	resp, _ := NewFindNodeResponse("cc", id, []NodeInfo{{ID: id, Addr: 1, Port: 2}}, "v").Marshal()
	errMsg, _ := NewError("dd", 201, "x").Marshal()
	gp, _ := NewGetPeers("ee", id, id).Marshal()
	ann, _ := NewAnnouncePeer("ff", id, id, 6881, "tok").Marshal()
	// Corruption-shaped seeds: the fault injector truncates datagrams and
	// chops compact node lists mid-entry, so the corpus covers truncation at
	// every interesting boundary and node strings whose length is not a
	// multiple of CompactNodeLen.
	corrupt := [][]byte{
		resp[:len(resp)/2], // truncated mid-message
		resp[:len(resp)-1], // missing final 'e'
		ping[:1],           // lone 'd'
		fn[:len(fn)/3],     // truncated query
		[]byte("d1:rd2:id20:aaaaaaaaaaaaaaaaaaaa5:nodes13:aaaaaaaaaaaaae1:t2:cc1:y1:re"), // nodes len 13 (%26 != 0)
		[]byte("d1:rd2:id20:aaaaaaaaaaaaaaaaaaaa5:nodes0:e1:t2:cc1:y1:re"),               // empty nodes
		[]byte("d1:rd5:nodes27:aaaaaaaaaaaaaaaaaaaaaaaaaaae1:t2:cc1:y1:re"),              // 26+1 bytes
		[]byte("d1:t999999999:xe"), // bencode length lies about the buffer
		[]byte("d1:y1:re"),         // response with no r dict
	}
	for _, seed := range append([][]byte{ping, fn, resp, errMsg, gp, ann, []byte("de"), []byte("i1e")}, corrupt...) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		enc, err := m.Marshal()
		if err != nil {
			// Some decodable inputs aren't encodable (e.g. unknown query
			// methods) — acceptable asymmetry.
			return
		}
		if _, err := Unmarshal(enc); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
