package krpc

import "testing"

// FuzzUnmarshal feeds arbitrary datagrams to the KRPC decoder: no panics,
// and accepted messages must survive a marshal/unmarshal round trip.
func FuzzUnmarshal(f *testing.F) {
	var id NodeID
	ping, _ := NewPing("aa", id).Marshal()
	fn, _ := NewFindNode("bb", id, id).Marshal()
	resp, _ := NewFindNodeResponse("cc", id, []NodeInfo{{ID: id, Addr: 1, Port: 2}}, "v").Marshal()
	errMsg, _ := NewError("dd", 201, "x").Marshal()
	gp, _ := NewGetPeers("ee", id, id).Marshal()
	ann, _ := NewAnnouncePeer("ff", id, id, 6881, "tok").Marshal()
	for _, seed := range [][]byte{ping, fn, resp, errMsg, gp, ann, []byte("de"), []byte("i1e")} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		enc, err := m.Marshal()
		if err != nil {
			// Some decodable inputs aren't encodable (e.g. unknown query
			// methods) — acceptable asymmetry.
			return
		}
		if _, err := Unmarshal(enc); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
