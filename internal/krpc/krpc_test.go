package krpc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

func testID(fill byte) NodeID {
	var id NodeID
	for i := range id {
		id[i] = fill
	}
	return id
}

func TestNodeIDFromBytes(t *testing.T) {
	if _, err := NodeIDFromBytes(make([]byte, 19)); err == nil {
		t.Error("short ID should error")
	}
	b := make([]byte, 20)
	b[0] = 0xab
	id, err := NodeIDFromBytes(b)
	if err != nil || id[0] != 0xab {
		t.Errorf("NodeIDFromBytes = %v, %v", id, err)
	}
}

func TestGenerateNodeIDDeterministic(t *testing.T) {
	ip := iputil.MustParseAddr("192.168.1.10")
	a := GenerateNodeID(ip, 42)
	b := GenerateNodeID(ip, 42)
	c := GenerateNodeID(ip, 43)
	if a != b {
		t.Error("same inputs must give same ID")
	}
	if a == c {
		t.Error("different randoms must give different IDs")
	}
}

func TestXORAndBucketIndex(t *testing.T) {
	a := testID(0)
	if a.BucketIndex(a) != -1 {
		t.Error("distance to self should be -1")
	}
	var b NodeID
	b[0] = 0x80 // highest bit set
	if got := a.BucketIndex(b); got != 159 {
		t.Errorf("BucketIndex = %d, want 159", got)
	}
	var c NodeID
	c[19] = 0x01 // lowest bit
	if got := a.BucketIndex(c); got != 0 {
		t.Errorf("BucketIndex = %d, want 0", got)
	}
}

func TestLessOrdersByDistance(t *testing.T) {
	target := testID(0)
	near, far := testID(0), testID(0)
	near[19] = 1
	far[0] = 0x80
	if !near.Less(far, target) {
		t.Error("near should order before far")
	}
	if far.Less(near, target) {
		t.Error("far should not order before near")
	}
}

func TestCompactNodesRoundTrip(t *testing.T) {
	nodes := []NodeInfo{
		{testID(1), iputil.MustParseAddr("192.0.2.1"), 6881},
		{testID(2), iputil.MustParseAddr("203.0.113.77"), 65535},
	}
	data := MarshalCompactNodes(nodes)
	if len(data) != 2*CompactNodeLen {
		t.Fatalf("compact length = %d", len(data))
	}
	back, err := UnmarshalCompactNodes(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nodes {
		if back[i] != nodes[i] {
			t.Errorf("node %d = %+v, want %+v", i, back[i], nodes[i])
		}
	}
	if _, err := UnmarshalCompactNodes(data[:10]); err == nil {
		t.Error("truncated compact data should error")
	}
}

func TestPingRoundTrip(t *testing.T) {
	self := testID(7)
	q := NewPing("aa", self)
	data, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindQuery || m.Method != MethodPing || m.ID != self || m.TxID != "aa" {
		t.Errorf("ping round trip = %+v", m)
	}
}

func TestFindNodeRoundTrip(t *testing.T) {
	self, target := testID(1), testID(9)
	q := NewFindNode("tx", self, target)
	data, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Method != MethodFindNode || m.Target != target {
		t.Errorf("find_node round trip = %+v", m)
	}
}

func TestFindNodeResponseRoundTrip(t *testing.T) {
	self := testID(3)
	nodes := []NodeInfo{
		{testID(4), iputil.MustParseAddr("198.51.100.4"), 51413},
		{testID(5), iputil.MustParseAddr("198.51.100.5"), 6881},
	}
	r := NewFindNodeResponse("tx", self, nodes, "LT0101")
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindResponse || len(m.Nodes) != 2 || m.Nodes[1].Port != 6881 {
		t.Errorf("response = %+v", m)
	}
	if m.Version != "LT0101" {
		t.Errorf("version = %q", m.Version)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	e := NewError("tx", ErrCodeMethodUnknown, "Method Unknown")
	data, err := e.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindError || m.ErrCode != 204 || m.ErrMsg != "Method Unknown" {
		t.Errorf("error round trip = %+v", m)
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	bad := [][]byte{
		nil,
		[]byte("i1e"),                      // not a dict
		[]byte("de"),                       // missing everything
		[]byte("d1:t2:aae"),                // missing y
		[]byte("d1:t2:aa1:y1:xe"),          // unknown kind
		[]byte("d1:t2:aa1:y1:qe"),          // query without method
		[]byte("d1:q4:ping1:t2:aa1:y1:qe"), // query without args
		[]byte("d1:rde1:t2:aa1:y1:re"),     // response without id
		[]byte("d1:ele1:t2:aa1:y1:ee"),     // short error body
	}
	for _, in := range bad {
		if _, err := Unmarshal(in); err == nil {
			t.Errorf("Unmarshal(%q) succeeded, want error", in)
		}
	}
}

func TestUnmarshalShortNodeID(t *testing.T) {
	// Query with an 8-byte id.
	data := []byte("d1:ad2:id8:shortide1:q4:ping1:t2:aa1:y1:qe")
	if _, err := Unmarshal(data); !errors.Is(err, ErrMalformed) {
		t.Errorf("short id: %v", err)
	}
}

func TestMarshalUnknownMethod(t *testing.T) {
	m := &Message{TxID: "t", Kind: KindQuery, Method: "bogus"}
	if _, err := m.Marshal(); err == nil {
		t.Error("unknown method should not marshal")
	}
}

func TestRoundTripRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 200; i++ {
		var id, target NodeID
		rng.Read(id[:])
		rng.Read(target[:])
		var msgs []*Message
		msgs = append(msgs,
			NewPing("t1", id),
			NewFindNode("t2", id, target),
			NewPingResponse("t3", id, "ve"),
			NewError("t4", ErrCodeGeneric, "oops"),
		)
		n := rng.Intn(8)
		nodes := make([]NodeInfo, n)
		for j := range nodes {
			rng.Read(nodes[j].ID[:])
			nodes[j].Addr = iputil.Addr(rng.Uint32())
			nodes[j].Port = uint16(rng.Intn(65536))
		}
		msgs = append(msgs, NewFindNodeResponse("t5", id, nodes, ""))
		for _, m := range msgs {
			data, err := m.Marshal()
			if err != nil {
				t.Fatalf("Marshal(%+v): %v", m, err)
			}
			back, err := Unmarshal(data)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			data2, err := back.Marshal()
			if err != nil || !bytes.Equal(data, data2) {
				t.Fatalf("re-encode mismatch: %q vs %q", data, data2)
			}
		}
	}
}
