// Mutation-robustness tests: the committed fuzz corpus under testdata/fuzz
// was discovered by running testkit.MutateBytes over valid messages and
// keeping one input per distinct decoder error site. This test keeps that
// discovery live — every mutant of every valid message must decode without
// panicking, and accepted mutants must survive the marshal round trip. It
// lives in an external test package because testkit (via core and crawler)
// imports krpc.
package krpc_test

import (
	"testing"

	"github.com/reuseblock/reuseblock/internal/krpc"
	"github.com/reuseblock/reuseblock/internal/testkit"
)

func TestUnmarshalRobustUnderMutation(t *testing.T) {
	var id krpc.NodeID
	ping, _ := krpc.NewPing("aa", id).Marshal()
	fn, _ := krpc.NewFindNode("bb", id, id).Marshal()
	resp, _ := krpc.NewFindNodeResponse("cc", id, []krpc.NodeInfo{{ID: id, Addr: 1, Port: 2}}, "v").Marshal()
	gp, _ := krpc.NewGetPeers("ee", id, id).Marshal()
	ann, _ := krpc.NewAnnouncePeer("ff", id, id, 6881, "tok").Marshal()

	for si, seed := range [][]byte{ping, fn, resp, gp, ann} {
		for mi, m := range testkit.MutateBytes(int64(si+1), seed, 500) {
			msg, err := krpc.Unmarshal(m)
			if err != nil {
				continue
			}
			enc, err := msg.Marshal()
			if err != nil {
				// Decodable-but-not-encodable is an accepted asymmetry
				// (e.g. unknown query methods).
				continue
			}
			if _, err := krpc.Unmarshal(enc); err != nil {
				t.Fatalf("seed %d mutant %d (%q): round trip failed: %v", si, mi, m, err)
			}
		}
	}
}
