// Package krpc implements the KRPC protocol used by the BitTorrent Mainline
// DHT (BEP 5): bencoded dictionaries carried in single UDP datagrams, with
// three message types — query ("q"), response ("r") and error ("e").
//
// The paper's crawler names map onto KRPC as follows: the paper's bt_ping is
// the KRPC "ping" query, and the paper's get_nodes is the KRPC "find_node"
// query, whose response carries compact node info (ID, IP, port) for
// neighbours of the target.
package krpc

import (
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"

	"github.com/reuseblock/reuseblock/internal/bencode"
	"github.com/reuseblock/reuseblock/internal/iputil"
)

// IDLen is the length of a DHT node identifier in bytes (160 bits).
const IDLen = 20

// NodeID is a 160-bit DHT node identifier.
type NodeID [IDLen]byte

// NodeIDFromBytes copies a 20-byte slice into a NodeID.
func NodeIDFromBytes(b []byte) (NodeID, error) {
	var id NodeID
	if len(b) != IDLen {
		return id, fmt.Errorf("krpc: node ID must be %d bytes, got %d", IDLen, len(b))
	}
	copy(id[:], b)
	return id, nil
}

// GenerateNodeID derives a node ID the way BitTorrent clients commonly do —
// and the way the paper describes (§3.1): hash the (possibly private) IP
// address together with a random number. Rebooting regenerates the random
// part, which is exactly why the paper's crawler cannot rely on node IDs to
// identify users.
func GenerateNodeID(privateIP iputil.Addr, random uint64) NodeID {
	var buf [12]byte
	binary.BigEndian.PutUint32(buf[0:4], uint32(privateIP))
	binary.BigEndian.PutUint64(buf[4:12], random)
	return NodeID(sha1.Sum(buf[:]))
}

// String renders the ID as lowercase hex.
func (id NodeID) String() string { return hex.EncodeToString(id[:]) }

// XOR returns the Kademlia distance between two IDs.
func (id NodeID) XOR(other NodeID) NodeID {
	var out NodeID
	for i := range id {
		out[i] = id[i] ^ other[i]
	}
	return out
}

// BucketIndex returns the index of the highest set bit of the XOR distance,
// i.e. 159 for maximally distant IDs and -1 for identical IDs. Routing
// tables use it to pick a k-bucket.
func (id NodeID) BucketIndex(other NodeID) int {
	d := id.XOR(other)
	for i, b := range d {
		if b != 0 {
			for j := 7; j >= 0; j-- {
				if b&(1<<uint(j)) != 0 {
					return (IDLen-1-i)*8 + j
				}
			}
		}
	}
	return -1
}

// Less orders IDs by XOR distance to a target; used for find_node responses.
func (id NodeID) Less(other, target NodeID) bool {
	for i := range id {
		da := id[i] ^ target[i]
		db := other[i] ^ target[i]
		if da != db {
			return da < db
		}
	}
	return false
}

// NodeInfo is the compact (ID, address, port) triple exchanged in find_node
// responses.
type NodeInfo struct {
	ID   NodeID
	Addr iputil.Addr
	Port uint16
}

// CompactNodeLen is the wire size of one compact node info entry.
const CompactNodeLen = IDLen + 6

// MarshalCompactNodes renders node infos in BEP 5 compact form: 26 bytes per
// node (20-byte ID, 4-byte IPv4, 2-byte big-endian port).
func MarshalCompactNodes(nodes []NodeInfo) []byte {
	out := make([]byte, 0, len(nodes)*CompactNodeLen)
	for _, n := range nodes {
		out = append(out, n.ID[:]...)
		oct := n.Addr.Octets()
		out = append(out, oct[:]...)
		out = append(out, byte(n.Port>>8), byte(n.Port))
	}
	return out
}

// UnmarshalCompactNodes parses BEP 5 compact node info.
func UnmarshalCompactNodes(data []byte) ([]NodeInfo, error) {
	if len(data)%CompactNodeLen != 0 {
		return nil, fmt.Errorf("krpc: compact node data length %d not a multiple of %d", len(data), CompactNodeLen)
	}
	nodes := make([]NodeInfo, 0, len(data)/CompactNodeLen)
	for off := 0; off < len(data); off += CompactNodeLen {
		var n NodeInfo
		copy(n.ID[:], data[off:off+IDLen])
		n.Addr = iputil.AddrFrom4(data[off+IDLen], data[off+IDLen+1], data[off+IDLen+2], data[off+IDLen+3])
		n.Port = uint16(data[off+IDLen+4])<<8 | uint16(data[off+IDLen+5])
		nodes = append(nodes, n)
	}
	return nodes, nil
}

// Kind discriminates the three KRPC message types.
type Kind byte

// KRPC message kinds.
const (
	KindQuery    Kind = 'q'
	KindResponse Kind = 'r'
	KindError    Kind = 'e'
)

// Query method names (BEP 5).
const (
	MethodPing         = "ping"      // the paper's bt_ping
	MethodFindNode     = "find_node" // the paper's get_nodes
	MethodGetPeers     = "get_peers"
	MethodAnnouncePeer = "announce_peer"
)

// Standard KRPC error codes.
const (
	ErrCodeGeneric       = 201
	ErrCodeServer        = 202
	ErrCodeProtocol      = 203
	ErrCodeMethodUnknown = 204
)

// Message is a decoded KRPC message. Exactly one of Query/Response/Error
// content is meaningful depending on Kind.
type Message struct {
	TxID    string // transaction ID echoed by responses
	Kind    Kind
	Version string // optional client version ("v" key)

	// Query fields.
	Method string
	ID     NodeID // querying or responding node's ID
	Target NodeID // find_node target / get_peers info-hash

	// Response fields.
	Nodes []NodeInfo // compact nodes in find_node/get_peers responses
	Peers []Peer     // compact peers ("values") in get_peers responses
	Token string     // get_peers write token / announce_peer proof

	// announce_peer query fields.
	AnnPort     uint16 // the port being announced
	ImpliedPort bool   // use the UDP source port instead of AnnPort

	// Error fields.
	ErrCode int
	ErrMsg  string
}

// Errors returned when decoding malformed datagrams.
var (
	ErrMalformed = errors.New("krpc: malformed message")
	ErrBadKind   = errors.New("krpc: unknown message kind")
)

// NewPing builds a ping query — the paper's bt_ping.
func NewPing(txID string, self NodeID) *Message {
	return &Message{TxID: txID, Kind: KindQuery, Method: MethodPing, ID: self}
}

// NewFindNode builds a find_node query — the paper's get_nodes.
func NewFindNode(txID string, self, target NodeID) *Message {
	return &Message{TxID: txID, Kind: KindQuery, Method: MethodFindNode, ID: self, Target: target}
}

// NewPingResponse builds the response to a ping.
func NewPingResponse(txID string, self NodeID, version string) *Message {
	return &Message{TxID: txID, Kind: KindResponse, ID: self, Version: version}
}

// NewFindNodeResponse builds the response to a find_node carrying up to k
// neighbours.
func NewFindNodeResponse(txID string, self NodeID, nodes []NodeInfo, version string) *Message {
	return &Message{TxID: txID, Kind: KindResponse, ID: self, Nodes: nodes, Version: version}
}

// NewGetPeers builds a get_peers query for an info-hash.
func NewGetPeers(txID string, self, infoHash NodeID) *Message {
	return &Message{TxID: txID, Kind: KindQuery, Method: MethodGetPeers, ID: self, Target: infoHash}
}

// NewAnnouncePeer builds an announce_peer query; token must come from a
// prior get_peers response of the queried node.
func NewAnnouncePeer(txID string, self, infoHash NodeID, port uint16, token string) *Message {
	return &Message{
		TxID: txID, Kind: KindQuery, Method: MethodAnnouncePeer,
		ID: self, Target: infoHash, AnnPort: port, Token: token,
	}
}

// NewGetPeersResponse builds a get_peers response carrying peers (when the
// node has announces for the info-hash), closest nodes, and a write token.
func NewGetPeersResponse(txID string, self NodeID, peers []Peer, nodes []NodeInfo, token, version string) *Message {
	return &Message{
		TxID: txID, Kind: KindResponse, ID: self,
		Peers: peers, Nodes: nodes, Token: token, Version: version,
	}
}

// NewError builds an error reply.
func NewError(txID string, code int, msg string) *Message {
	return &Message{TxID: txID, Kind: KindError, ErrCode: code, ErrMsg: msg}
}

// Marshal encodes the message into a bencoded datagram.
func (m *Message) Marshal() ([]byte, error) {
	root := map[string]bencode.Value{
		"t": m.TxID,
		"y": string(m.Kind),
	}
	if m.Version != "" {
		root["v"] = m.Version
	}
	switch m.Kind {
	case KindQuery:
		args := map[string]bencode.Value{"id": string(m.ID[:])}
		switch m.Method {
		case MethodFindNode:
			args["target"] = string(m.Target[:])
		case MethodGetPeers:
			args["info_hash"] = string(m.Target[:])
		case MethodAnnouncePeer:
			args["info_hash"] = string(m.Target[:])
			args["port"] = int64(m.AnnPort)
			args["token"] = m.Token
			if m.ImpliedPort {
				args["implied_port"] = int64(1)
			}
		case MethodPing:
		default:
			return nil, fmt.Errorf("krpc: unknown method %q", m.Method)
		}
		root["q"] = m.Method
		root["a"] = args
	case KindResponse:
		resp := map[string]bencode.Value{"id": string(m.ID[:])}
		if len(m.Nodes) > 0 {
			resp["nodes"] = string(MarshalCompactNodes(m.Nodes))
		}
		if len(m.Peers) > 0 {
			values := make([]bencode.Value, len(m.Peers))
			for i, p := range m.Peers {
				values[i] = string(MarshalCompactPeer(p))
			}
			resp["values"] = values
		}
		if m.Token != "" {
			resp["token"] = m.Token
		}
		root["r"] = resp
	case KindError:
		root["e"] = []bencode.Value{int64(m.ErrCode), m.ErrMsg}
	default:
		return nil, ErrBadKind
	}
	return bencode.Encode(root)
}

// Unmarshal decodes a bencoded datagram into a Message.
func Unmarshal(data []byte) (*Message, error) {
	raw, err := bencode.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	dict, ok := raw.(map[string]bencode.Value)
	if !ok {
		return nil, fmt.Errorf("%w: top level is not a dict", ErrMalformed)
	}
	m := &Message{}
	if t, ok := dict["t"].(string); ok {
		m.TxID = t
	} else {
		return nil, fmt.Errorf("%w: missing transaction ID", ErrMalformed)
	}
	y, ok := dict["y"].(string)
	if !ok || len(y) != 1 {
		return nil, fmt.Errorf("%w: missing message kind", ErrMalformed)
	}
	if v, ok := dict["v"].(string); ok {
		m.Version = v
	}
	m.Kind = Kind(y[0])
	switch m.Kind {
	case KindQuery:
		q, ok := dict["q"].(string)
		if !ok {
			return nil, fmt.Errorf("%w: query without method", ErrMalformed)
		}
		m.Method = q
		args, ok := dict["a"].(map[string]bencode.Value)
		if !ok {
			return nil, fmt.Errorf("%w: query without args", ErrMalformed)
		}
		if err := decodeID(args, "id", &m.ID); err != nil {
			return nil, err
		}
		switch q {
		case MethodFindNode:
			if err := decodeID(args, "target", &m.Target); err != nil {
				return nil, err
			}
		case MethodGetPeers:
			if err := decodeID(args, "info_hash", &m.Target); err != nil {
				return nil, err
			}
		case MethodAnnouncePeer:
			if err := decodeID(args, "info_hash", &m.Target); err != nil {
				return nil, err
			}
			port, ok := args["port"].(int64)
			if !ok || port < 0 || port > 65535 {
				return nil, fmt.Errorf("%w: bad announce port", ErrMalformed)
			}
			m.AnnPort = uint16(port)
			tok, ok := args["token"].(string)
			if !ok {
				return nil, fmt.Errorf("%w: announce without token", ErrMalformed)
			}
			m.Token = tok
			if ip, ok := args["implied_port"].(int64); ok && ip != 0 {
				m.ImpliedPort = true
			}
		}
	case KindResponse:
		resp, ok := dict["r"].(map[string]bencode.Value)
		if !ok {
			return nil, fmt.Errorf("%w: response without body", ErrMalformed)
		}
		if err := decodeID(resp, "id", &m.ID); err != nil {
			return nil, err
		}
		if nodesRaw, ok := resp["nodes"].(string); ok {
			nodes, err := UnmarshalCompactNodes([]byte(nodesRaw))
			if err != nil {
				return nil, err
			}
			m.Nodes = nodes
		}
		if values, ok := resp["values"].([]bencode.Value); ok {
			for _, v := range values {
				s, ok := v.(string)
				if !ok {
					return nil, fmt.Errorf("%w: non-string peer value", ErrMalformed)
				}
				peer, err := UnmarshalCompactPeer([]byte(s))
				if err != nil {
					return nil, err
				}
				m.Peers = append(m.Peers, peer)
			}
		}
		if tok, ok := resp["token"].(string); ok {
			m.Token = tok
		}
	case KindError:
		e, ok := dict["e"].([]bencode.Value)
		if !ok || len(e) < 2 {
			return nil, fmt.Errorf("%w: malformed error body", ErrMalformed)
		}
		code, ok1 := e[0].(int64)
		msg, ok2 := e[1].(string)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("%w: malformed error body", ErrMalformed)
		}
		m.ErrCode, m.ErrMsg = int(code), msg
	default:
		return nil, ErrBadKind
	}
	return m, nil
}

func decodeID(dict map[string]bencode.Value, key string, dst *NodeID) error {
	s, ok := dict[key].(string)
	if !ok {
		return fmt.Errorf("%w: missing %q", ErrMalformed, key)
	}
	id, err := NodeIDFromBytes([]byte(s))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	*dst = id
	return nil
}
