package krpc

import (
	"testing"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

func TestCompactPeerRoundTrip(t *testing.T) {
	p := Peer{Addr: iputil.MustParseAddr("203.0.113.9"), Port: 51413}
	data := MarshalCompactPeer(p)
	if len(data) != CompactPeerLen {
		t.Fatalf("len = %d", len(data))
	}
	back, err := UnmarshalCompactPeer(data)
	if err != nil || back != p {
		t.Fatalf("round trip = %+v, %v", back, err)
	}
	if _, err := UnmarshalCompactPeer(data[:5]); err == nil {
		t.Error("short peer accepted")
	}
}

func TestGetPeersRoundTrip(t *testing.T) {
	self, hash := testID(1), testID(9)
	q := NewGetPeers("tx", self, hash)
	data, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Method != MethodGetPeers || m.Target != hash {
		t.Errorf("get_peers round trip = %+v", m)
	}
}

func TestGetPeersResponseRoundTrip(t *testing.T) {
	self := testID(3)
	peers := []Peer{
		{Addr: iputil.MustParseAddr("10.0.0.1"), Port: 6881},
		{Addr: iputil.MustParseAddr("10.0.0.2"), Port: 51413},
	}
	nodes := []NodeInfo{{ID: testID(4), Addr: iputil.MustParseAddr("10.0.0.3"), Port: 6881}}
	r := NewGetPeersResponse("tx", self, peers, nodes, "secret-token", "v1")
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Peers) != 2 || m.Peers[1].Port != 51413 {
		t.Errorf("peers = %+v", m.Peers)
	}
	if len(m.Nodes) != 1 || m.Token != "secret-token" {
		t.Errorf("nodes/token = %+v / %q", m.Nodes, m.Token)
	}
}

func TestAnnouncePeerRoundTrip(t *testing.T) {
	self, hash := testID(2), testID(8)
	q := NewAnnouncePeer("tx", self, hash, 40000, "tok")
	data, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Method != MethodAnnouncePeer || m.Target != hash || m.AnnPort != 40000 ||
		m.Token != "tok" || m.ImpliedPort {
		t.Errorf("announce round trip = %+v", m)
	}
	// Implied-port variant.
	q.ImpliedPort = true
	data, err = q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m, err = Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !m.ImpliedPort {
		t.Error("implied_port lost in round trip")
	}
}

func TestAnnouncePeerMalformed(t *testing.T) {
	// Missing token.
	var id NodeID
	raw := "d1:ad2:id20:" + string(id[:]) + "9:info_hash20:" + string(id[:]) +
		"4:porti6881ee1:q13:announce_peer1:t2:aa1:y1:qe"
	if _, err := Unmarshal([]byte(raw)); err == nil {
		t.Error("announce without token accepted")
	}
	// Out-of-range port.
	raw = "d1:ad2:id20:" + string(id[:]) + "9:info_hash20:" + string(id[:]) +
		"4:porti70000e5:token1:xe1:q13:announce_peer1:t2:aa1:y1:qe"
	if _, err := Unmarshal([]byte(raw)); err == nil {
		t.Error("announce with port 70000 accepted")
	}
}

func TestGetPeersResponseBadValues(t *testing.T) {
	var id NodeID
	// "values" entries that are not 6-byte strings must be rejected.
	raw := "d1:rd2:id20:" + string(id[:]) + "6:valuesl2:abee1:t2:aa1:y1:re"
	if _, err := Unmarshal([]byte(raw)); err == nil {
		t.Error("malformed compact peer accepted")
	}
	raw = "d1:rd2:id20:" + string(id[:]) + "6:valuesli5eee1:t2:aa1:y1:re"
	if _, err := Unmarshal([]byte(raw)); err == nil {
		t.Error("non-string peer value accepted")
	}
}
