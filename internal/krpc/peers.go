package krpc

import (
	"fmt"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// Peer is a compact peer contact (BEP 5 "values" entries): address and port
// without a node ID.
type Peer struct {
	Addr iputil.Addr
	Port uint16
}

// CompactPeerLen is the wire size of one compact peer entry.
const CompactPeerLen = 6

// MarshalCompactPeer renders one peer in 6-byte compact form.
func MarshalCompactPeer(p Peer) []byte {
	oct := p.Addr.Octets()
	return []byte{oct[0], oct[1], oct[2], oct[3], byte(p.Port >> 8), byte(p.Port)}
}

// UnmarshalCompactPeer parses one 6-byte compact peer.
func UnmarshalCompactPeer(data []byte) (Peer, error) {
	if len(data) != CompactPeerLen {
		return Peer{}, fmt.Errorf("krpc: compact peer must be %d bytes, got %d", CompactPeerLen, len(data))
	}
	return Peer{
		Addr: iputil.AddrFrom4(data[0], data[1], data[2], data[3]),
		Port: uint16(data[4])<<8 | uint16(data[5]),
	}, nil
}
