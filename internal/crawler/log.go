package crawler

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/krpc"
)

// The paper's crawler "logs all the messages (bt_ping or get_nodes) sent and
// all the messages received with the timestamps, which are then processed to
// determine NATed addresses" (§3.1). This file implements that log format
// and the offline post-processor, so NAT determination can be reproduced
// from a message log alone.

// EventKind tags a message-log line.
type EventKind string

// Log event kinds.
const (
	EvPingTx     EventKind = "ping-tx"
	EvGetNodesTx EventKind = "getnodes-tx"
	EvPingRx     EventKind = "ping-rx"     // response to a bt_ping
	EvGetNodesRx EventKind = "getnodes-rx" // response to a get_nodes
	EvObserve    EventKind = "observe"     // (IP, port, id) learned from a neighbour list
	EvLateRx     EventKind = "late-rx"     // response that arrived after its query timed out
)

// LogEvent is one parsed message-log line.
type LogEvent struct {
	At   time.Time
	Kind EventKind
	Addr iputil.Addr
	Port uint16
	// NodeID is set on rx/observe events.
	NodeID krpc.NodeID
	HasID  bool
}

// writeEvent appends one line: RFC3339Nano, kind, addr, port, node ID (hex
// or "-").
func writeEvent(w io.Writer, ev LogEvent) error {
	id := "-"
	if ev.HasID {
		id = hex.EncodeToString(ev.NodeID[:])
	}
	_, err := fmt.Fprintf(w, "%s %s %s %d %s\n",
		ev.At.UTC().Format(time.RFC3339Nano), ev.Kind, ev.Addr, ev.Port, id)
	return err
}

// ParseLog reads a crawler message log.
func ParseLog(r io.Reader) ([]LogEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []LogEvent
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 5 {
			return nil, fmt.Errorf("crawler: log line %d: want 5 fields, got %d", line, len(fields))
		}
		at, err := time.Parse(time.RFC3339Nano, fields[0])
		if err != nil {
			return nil, fmt.Errorf("crawler: log line %d: %w", line, err)
		}
		addr, err := iputil.ParseAddr(fields[2])
		if err != nil {
			return nil, fmt.Errorf("crawler: log line %d: %w", line, err)
		}
		port, err := strconv.ParseUint(fields[3], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("crawler: log line %d: bad port: %w", line, err)
		}
		ev := LogEvent{At: at, Kind: EventKind(fields[1]), Addr: addr, Port: uint16(port)}
		if fields[4] != "-" {
			raw, err := hex.DecodeString(fields[4])
			if err != nil {
				return nil, fmt.Errorf("crawler: log line %d: bad node ID: %w", line, err)
			}
			id, err := krpc.NodeIDFromBytes(raw)
			if err != nil {
				return nil, fmt.Errorf("crawler: log line %d: %w", line, err)
			}
			ev.NodeID, ev.HasID = id, true
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Replay post-processes a message log with the paper's rule: within each
// ping window, an IP answering from at least two distinct ports with at
// least two distinct node IDs is NATed; the per-window maximum of distinct
// responding (port, ID) pairs lower-bounds its simultaneous users.
func Replay(events []LogEvent, window time.Duration) []NATObservation {
	if window <= 0 {
		window = 30 * time.Second
	}
	sorted := make([]LogEvent, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At.Before(sorted[j].At) })

	type reply struct {
		at   time.Time
		port uint16
		id   krpc.NodeID
	}
	replies := make(map[iputil.Addr][]reply)
	portsSeen := make(map[iputil.Addr]map[uint16]bool)
	for _, ev := range sorted {
		switch ev.Kind {
		case EvPingRx:
			if ev.HasID {
				replies[ev.Addr] = append(replies[ev.Addr], reply{ev.At, ev.Port, ev.NodeID})
			}
			fallthrough
		case EvGetNodesRx, EvObserve, EvPingTx, EvGetNodesTx, EvLateRx:
			ps := portsSeen[ev.Addr]
			if ps == nil {
				ps = make(map[uint16]bool)
				portsSeen[ev.Addr] = ps
			}
			ps[ev.Port] = true
		}
	}

	var out []NATObservation
	for addr, rs := range replies {
		best := 0
		var firstConfirm time.Time
		// Slide a window over this address's ping replies.
		for i := range rs {
			end := rs[i].at.Add(window)
			ports := map[uint16]bool{}
			ids := map[krpc.NodeID]bool{}
			for j := i; j < len(rs) && !rs[j].at.After(end); j++ {
				ports[rs[j].port] = true
				ids[rs[j].id] = true
			}
			users := len(ids)
			if len(ports) < users {
				users = len(ports)
			}
			if len(ports) >= 2 && len(ids) >= 2 {
				if best == 0 || users > best {
					if best == 0 {
						firstConfirm = end
					}
					if users > best {
						best = users
					}
				}
			}
		}
		if best >= 2 {
			out = append(out, NATObservation{
				Addr:           addr,
				Users:          best,
				FirstConfirmed: firstConfirm,
				PortsSeen:      len(portsSeen[addr]),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
