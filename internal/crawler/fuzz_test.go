package crawler

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseLog: arbitrary text must never panic the log parser, and
// anything it accepts must round-trip through writeEvent.
func FuzzParseLog(f *testing.F) {
	f.Add("2019-01-01T00:00:00Z ping-tx 10.0.0.1 6881 -\n")
	f.Add("# comment\n\n2019-01-01T00:00:00Z ping-rx 10.0.0.1 6881 " + strings.Repeat("ab", 20) + "\n")
	f.Add("garbage line\n")
	f.Fuzz(func(t *testing.T, data string) {
		events, err := ParseLog(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		for _, ev := range events {
			if werr := writeEvent(&buf, ev); werr != nil {
				t.Fatalf("writeEvent: %v", werr)
			}
		}
		back, err := ParseLog(&buf)
		if err != nil {
			t.Fatalf("rewritten log failed to parse: %v", err)
		}
		if len(back) != len(events) {
			t.Fatalf("round trip lost events: %d -> %d", len(events), len(back))
		}
	})
}
