package crawler

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/krpc"
	"github.com/reuseblock/reuseblock/internal/netsim"
)

func TestLogRoundTrip(t *testing.T) {
	var id krpc.NodeID
	id[0], id[19] = 0xab, 0x01
	events := []LogEvent{
		{At: netsim.Epoch, Kind: EvPingTx, Addr: iputil.MustParseAddr("10.0.0.1"), Port: 6881},
		{At: netsim.Epoch.Add(time.Second), Kind: EvPingRx, Addr: iputil.MustParseAddr("10.0.0.1"), Port: 6881, NodeID: id, HasID: true},
	}
	var buf bytes.Buffer
	for _, ev := range events {
		if err := writeEvent(&buf, ev); err != nil {
			t.Fatal(err)
		}
	}
	back, err := ParseLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("parsed %d events", len(back))
	}
	if back[0].Kind != EvPingTx || back[0].HasID {
		t.Errorf("event 0 = %+v", back[0])
	}
	if back[1].NodeID != id || !back[1].HasID {
		t.Errorf("event 1 = %+v", back[1])
	}
	if !back[1].At.Equal(events[1].At) {
		t.Errorf("timestamp = %v", back[1].At)
	}
}

func TestParseLogErrors(t *testing.T) {
	bad := []string{
		"nope\n",
		"2019-01-01T00:00:00Z ping-tx 10.0.0.1 6881\n",        // 4 fields
		"yesterday ping-tx 10.0.0.1 6881 -\n",                 // bad time
		"2019-01-01T00:00:00Z ping-tx 999.0.0.1 6881 -\n",     // bad addr
		"2019-01-01T00:00:00Z ping-tx 10.0.0.1 99999 -\n",     // bad port
		"2019-01-01T00:00:00Z ping-rx 10.0.0.1 6881 zz\n",     // bad hex
		"2019-01-01T00:00:00Z ping-rx 10.0.0.1 6881 abcdef\n", // short ID
	}
	for _, in := range bad {
		if _, err := ParseLog(strings.NewReader(in)); err == nil {
			t.Errorf("ParseLog(%q) succeeded", in)
		}
	}
	// Comments and blanks are fine.
	ok := "# header\n\n2019-01-01T00:00:00Z ping-tx 10.0.0.1 6881 -\n"
	evs, err := ParseLog(strings.NewReader(ok))
	if err != nil || len(evs) != 1 {
		t.Errorf("comment handling: %v, %d events", err, len(evs))
	}
}

func TestReplayRule(t *testing.T) {
	addr := iputil.MustParseAddr("100.64.0.1")
	var idA, idB krpc.NodeID
	idA[0], idB[0] = 1, 2
	t0 := netsim.Epoch

	// Two replies, two ports, two IDs, same window: NATed with 2 users.
	events := []LogEvent{
		{At: t0, Kind: EvPingRx, Addr: addr, Port: 1024, NodeID: idA, HasID: true},
		{At: t0.Add(5 * time.Second), Kind: EvPingRx, Addr: addr, Port: 1025, NodeID: idB, HasID: true},
	}
	obs := Replay(events, 30*time.Second)
	if len(obs) != 1 || obs[0].Users != 2 {
		t.Fatalf("Replay = %+v", obs)
	}

	// Same two replies an hour apart: separate windows, not NATed.
	events[1].At = t0.Add(time.Hour)
	if obs := Replay(events, 30*time.Second); len(obs) != 0 {
		t.Errorf("cross-window replies flagged: %+v", obs)
	}

	// Two ports but the same node ID (one user that changed port): not NATed.
	events[1].At = t0.Add(5 * time.Second)
	events[1].NodeID = idA
	if obs := Replay(events, 30*time.Second); len(obs) != 0 {
		t.Errorf("single-user port change flagged: %+v", obs)
	}

	// Two IDs on one port (reboot): not NATed.
	events[1].NodeID = idB
	events[1].Port = 1024
	if obs := Replay(events, 30*time.Second); len(obs) != 0 {
		t.Errorf("same-port ID churn flagged: %+v", obs)
	}
}

// TestOnlineOfflineAgree runs a crawl with logging enabled and checks the
// offline Replay reaches the same NAT determinations as the live crawler.
func TestOnlineOfflineAgree(t *testing.T) {
	s := newSwarm(t, 20, 0.1)
	s.addNATUsers(t, "100.64.0.1", 3, netsim.FullCone)
	s.addNATUsers(t, "100.64.0.2", 2, netsim.FullCone)

	var logBuf bytes.Buffer
	cfg := fastConfig()
	cfg.EventLog = &logBuf
	c := s.newCrawler(t, cfg)
	c.Start()
	s.clock.RunFor(10 * time.Hour)
	c.Stop()

	online := c.NATed()
	events, err := ParseLog(&logBuf)
	if err != nil {
		t.Fatal(err)
	}
	offline := Replay(events, cfg.PingWindow)

	onlineSet := map[iputil.Addr]int{}
	for _, o := range online {
		onlineSet[o.Addr] = o.Users
	}
	offlineSet := map[iputil.Addr]int{}
	for _, o := range offline {
		offlineSet[o.Addr] = o.Users
	}
	for addr, users := range onlineSet {
		ou, ok := offlineSet[addr]
		if !ok {
			t.Errorf("online NAT %v missing offline", addr)
			continue
		}
		// Offline windows slide rather than align with rounds, so the
		// offline bound can only be equal or tighter upward.
		if ou < users {
			t.Errorf("NAT %v: offline users %d < online %d", addr, ou, users)
		}
	}
	for addr := range offlineSet {
		if _, ok := onlineSet[addr]; !ok {
			// Offline sliding windows may merge adjacent rounds; any
			// extra detection must still be a genuine multi-user address
			// in this world (both NATs qualify).
			if addr != iputil.MustParseAddr("100.64.0.1") && addr != iputil.MustParseAddr("100.64.0.2") {
				t.Errorf("offline flagged non-NAT %v", addr)
			}
		}
	}
	if len(online) == 0 {
		t.Error("no NATs detected online; test is vacuous")
	}
}
