package crawler

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestMergeStatsZeroStays pins the empty-fleet edge case: merging any
// number of zero-value stats (including none at all) keeps ResponseRate an
// exact 0 — the rate is recomputed from summed counters, never averaged,
// so a 0/0 division can't smuggle a NaN into reports.
func TestMergeStatsZeroStaysZero(t *testing.T) {
	for _, stats := range [][]Stats{
		{},
		{{}},
		{{}, {}, {}},
	} {
		m := MergeStats(stats...)
		if m.ResponseRate != 0 {
			t.Fatalf("merge of %d zero stats: ResponseRate = %v, want exact 0", len(stats), m.ResponseRate)
		}
		if math.IsNaN(m.ResponseRate) || math.IsInf(m.ResponseRate, 0) {
			t.Fatalf("merge of %d zero stats produced %v", len(stats), m.ResponseRate)
		}
		if m.MessagesSent != 0 || m.MessagesReceived != 0 {
			t.Fatalf("merge of zero stats invented traffic: %+v", m)
		}
	}
	// A mix of zero and non-zero vantages must also stay finite and use
	// only the real traffic.
	m := MergeStats(Stats{}, Stats{PingsSent: 10, PingReplies: 4}, Stats{})
	if got, want := m.ResponseRate, 0.4; got != want {
		t.Fatalf("zero+live merge ResponseRate = %v, want %v", got, want)
	}
}

// TestMergeStatsSimultaneousMaxIsMaxNotSum: each vantage's SimultaneousMax
// is a lower bound on users behind one address; vantages can count the same
// users, so the merge takes the largest single bound rather than adding
// them (a sum could exceed the true population).
func TestMergeStatsSimultaneousMaxIsMaxNotSum(t *testing.T) {
	m := MergeStats(
		Stats{SimultaneousMax: 17},
		Stats{SimultaneousMax: 41},
		Stats{SimultaneousMax: 23},
	)
	if m.SimultaneousMax != 41 {
		t.Fatalf("SimultaneousMax = %d, want max 41 (not sum 81)", m.SimultaneousMax)
	}
	if m := MergeStats(Stats{SimultaneousMax: 7}); m.SimultaneousMax != 7 {
		t.Fatalf("single-vantage SimultaneousMax = %d, want 7", m.SimultaneousMax)
	}
}

// TestMergeStatsOrderInvariant: shuffling the vantage order never changes
// the merged statistics — every field is a sum, a max, or derived from
// sums, so fleet workers can report in any completion order.
func TestMergeStatsOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randStats := func() Stats {
		return Stats{
			GetNodesSent:    int64(rng.Intn(1000)),
			GetNodesReplies: int64(rng.Intn(1000)),
			PingsSent:       int64(rng.Intn(1000)),
			PingReplies:     int64(rng.Intn(1000)),
			Timeouts:        int64(rng.Intn(100)),
			Retries:         int64(rng.Intn(100)),
			LateReplies:     int64(rng.Intn(50)),
			Evicted:         int64(rng.Intn(50)),
			ScopeSuppressed: int64(rng.Intn(200)),
			SimultaneousMax: rng.Intn(60),
			PingRoundsRun:   rng.Intn(40),
			SweepsRun:       rng.Intn(40),
		}
	}
	base := make([]Stats, 6)
	for i := range base {
		base[i] = randStats()
	}
	want := MergeStats(base...)
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]Stats(nil), base...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := MergeStats(shuffled...); !reflect.DeepEqual(got, want) {
			t.Fatalf("merge depends on vantage order:\n got %+v\nwant %+v", got, want)
		}
	}
}

// TestMergeStatsResponseRateRecomputed: the merged rate reflects combined
// traffic, not the mean of per-vantage rates — a busy lossy vantage must
// outweigh a quiet clean one.
func TestMergeStatsResponseRateRecomputed(t *testing.T) {
	m := MergeStats(
		Stats{PingsSent: 1000, PingReplies: 100}, // 10% on heavy traffic
		Stats{PingsSent: 10, PingReplies: 10},    // 100% on a trickle
	)
	want := 110.0 / 1010.0
	if m.ResponseRate != want {
		t.Fatalf("ResponseRate = %v, want traffic-weighted %v (naive mean would be 0.55)", m.ResponseRate, want)
	}
}
