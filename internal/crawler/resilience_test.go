package crawler

import (
	"strings"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/dht"
	"github.com/reuseblock/reuseblock/internal/faults"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/netsim"
)

// TestRetriesRecoverLoss crawls a very lossy fabric with and without
// retries: retransmissions must recover a substantial share of the replies
// that single-shot queries lose.
func TestRetriesRecoverLoss(t *testing.T) {
	run := func(retries int) Stats {
		s := newSwarm(t, 30, 0.6)
		c := s.newCrawler(t, Config{
			Bootstrap:  []netsim.Endpoint{s.eps[0], s.eps[1], s.eps[2], s.eps[3]},
			Seed:       3,
			MaxRetries: retries,
			RetryBase:  500 * time.Millisecond,
			Cooldown:   5 * time.Minute,
		})
		c.Start()
		s.clock.RunFor(4 * time.Hour)
		c.Stop()
		return c.Stats()
	}
	plain := run(0)
	retried := run(3)
	if plain.Retries != 0 {
		t.Fatalf("MaxRetries=0 still retried %d times", plain.Retries)
	}
	if retried.Retries == 0 {
		t.Fatal("MaxRetries=3 never retried on a 60%-loss fabric")
	}
	if retried.ResponseRate <= plain.ResponseRate {
		t.Fatalf("retries did not improve response rate: %.3f vs %.3f",
			retried.ResponseRate, plain.ResponseRate)
	}
	if retried.UniqueIPs < plain.UniqueIPs {
		t.Fatalf("retries shrank coverage: %d vs %d IPs", retried.UniqueIPs, plain.UniqueIPs)
	}
}

// TestLateReplies makes the network slower than the query timeout: every
// reply arrives after its query was scored a timeout, and each one must be
// counted and logged as late rather than silently ignored.
func TestLateReplies(t *testing.T) {
	clock := netsim.NewClock()
	net, err := netsim.NewNetwork(clock, netsim.Config{
		LatencyBase: 80 * time.Millisecond,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep := netsim.Endpoint{Addr: iputil.MustParseAddr("10.0.0.1"), Port: 6881}
	sock, err := net.Listen(ep)
	if err != nil {
		t.Fatal(err)
	}
	dht.NewNode(sock, dht.SimClock(clock), dht.Config{PrivateIP: ep.Addr, IDSeed: 1, Seed: 1})

	var log strings.Builder
	csock, err := net.Listen(netsim.Endpoint{Addr: iputil.MustParseAddr("172.16.0.1"), Port: 9999})
	if err != nil {
		t.Fatal(err)
	}
	c := New(csock, dht.SimClock(clock), Config{
		Bootstrap:    []netsim.Endpoint{ep},
		Seed:         5,
		QueryTimeout: 100 * time.Millisecond, // round trip takes 160ms
		EventLog:     &log,
	})
	c.Start()
	clock.RunFor(10 * time.Minute)
	c.Stop()
	st := c.Stats()
	if st.LateReplies == 0 {
		t.Fatal("no late replies counted on a fabric slower than the timeout")
	}
	if st.Timeouts < st.LateReplies {
		t.Fatalf("every late reply follows a timeout: timeouts=%d late=%d", st.Timeouts, st.LateReplies)
	}
	if st.GetNodesReplies != 0 || st.PingReplies != 0 {
		t.Fatalf("replies past the deadline must not count as on-time: %+v", st)
	}
	if !strings.Contains(log.String(), string(EvLateRx)) {
		t.Fatal("late replies were not logged")
	}
	events, err := ParseLog(strings.NewReader(log.String()))
	if err != nil {
		t.Fatalf("log with late-rx lines failed to parse: %v", err)
	}
	Replay(events, 30*time.Second) // must not choke on the new kind
}

// TestEviction points the crawler at one live and one dead bootstrap: the
// dead endpoint must leave the frontier after EvictAfter failed queries
// while the live swarm keeps being crawled.
func TestEviction(t *testing.T) {
	s := newSwarm(t, 20, 0)
	dead := netsim.Endpoint{Addr: iputil.MustParseAddr("10.9.9.9"), Port: 6881}
	c := s.newCrawler(t, Config{
		Bootstrap:  []netsim.Endpoint{s.eps[0], dead},
		Seed:       3,
		EvictAfter: 2,
		Cooldown:   time.Minute,
	})
	c.Start()
	s.clock.RunFor(3 * time.Hour)
	c.Stop()
	st := c.Stats()
	if st.Evicted == 0 {
		t.Fatal("dead endpoint was never evicted")
	}
	if !c.evicted[dead] {
		t.Fatal("evicted some endpoint, but not the dead bootstrap")
	}
	if st.UniqueIPs < 20 {
		t.Fatalf("eviction hurt live coverage: %d IPs", st.UniqueIPs)
	}
	// The sweeps after eviction must stop re-enqueueing the dead endpoint,
	// bounding wasted traffic: with sweeps every hour and eviction after 2
	// failures, far fewer timeouts than sweeps*cooldowns can occur.
	if st.Timeouts > 20 {
		t.Fatalf("evicted endpoint kept being queried: %d timeouts", st.Timeouts)
	}
}

// TestCrawlerSurvivesCorruption injects heavy reply corruption — truncated
// datagrams, bit flips, compact node lists with bad lengths — and checks the
// crawler neither crashes nor corrupts its accounting.
func TestCrawlerSurvivesCorruption(t *testing.T) {
	clock := netsim.NewClock()
	scn := &faults.Scenario{Corruption: &faults.Corruption{Prob: 0.5}}
	inj, err := faults.NewInjector(scn, 9, clock)
	if err != nil {
		t.Fatal(err)
	}
	cfg := netsim.Config{
		LatencyBase:   10 * time.Millisecond,
		LatencyJitter: 20 * time.Millisecond,
		Seed:          7,
	}
	inj.Install(&cfg)
	net, err := netsim.NewNetwork(clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := &swarm{clock: clock, net: net}
	for i := 0; i < 30; i++ {
		s.addPublicNode(t, iputil.AddrFrom4(10, 1, 0, byte(i+1)), 6881, int64(i+1))
	}
	s.mesh()
	c := s.newCrawler(t, Config{Seed: 3, MaxRetries: 2})
	c.Start()
	s.clock.RunFor(2 * time.Hour)
	c.Stop()
	st := c.Stats()
	if inj.Stats().Corrupted == 0 {
		t.Fatal("injector corrupted nothing; test proves nothing")
	}
	if st.UniqueIPs < 10 {
		t.Fatalf("crawler found only %d/30 IPs under 50%% corruption", st.UniqueIPs)
	}
	if st.GetNodesReplies+st.PingReplies > st.GetNodesSent+st.PingsSent {
		t.Fatalf("more replies than queries: %+v", st)
	}
	for addr, rec := range c.ips {
		if rec.addr != addr {
			t.Fatalf("ip record key %v holds record for %v", addr, rec.addr)
		}
		if len(rec.ports) == 0 {
			t.Fatalf("ip record %v has no ports", addr)
		}
	}
}

// TestRetryDeterminism runs the same lossy crawl twice with retries and
// eviction enabled; every statistic must match exactly.
func TestRetryDeterminism(t *testing.T) {
	run := func() Stats {
		s := newSwarm(t, 30, 0.5)
		c := s.newCrawler(t, Config{Seed: 3, MaxRetries: 2, EvictAfter: 3})
		c.Start()
		s.clock.RunFor(time.Hour)
		c.Stop()
		return c.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("retry-enabled crawl diverged:\n%+v\n%+v", a, b)
	}
	if a.Retries == 0 {
		t.Fatal("expected retries on a 50%-loss fabric")
	}
}
