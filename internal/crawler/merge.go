package crawler

import (
	"sort"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// The paper notes its single-vantage crawler concentrated all reply traffic
// on one network and suggests "having the crawler at multiple vantage
// points in different networks" (§3.1). This file merges the results of
// several crawler instances into one view.

// MergeObservations unions NAT observations from multiple vantage points:
// an address is NATed if any vantage confirmed it; the user lower bound is
// the maximum any vantage established (each is a valid lower bound); ports
// seen and the earliest confirmation are combined.
func MergeObservations(groups ...[]NATObservation) []NATObservation {
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	return MergeObservationsInto(make([]NATObservation, 0, total), groups...)
}

// MergeObservationsInto is the allocation-free form of MergeObservations: a
// k-way merge into dst (grown from dst[:0]), exploiting that Crawler.NATed
// returns observations sorted by address. Every combining operation is a
// max or a min, so the result is invariant under group order. When dst has
// capacity for the result and all groups are sorted — the crawl pipeline's
// steady state — the merge allocates nothing; an unsorted group (legal, but
// nothing in the repo produces one) is sorted into a private copy first.
// The previous map-based merge rebuilt and re-sorted the whole address
// universe on every call, which at paper scale meant hundreds of megabytes
// of transient garbage per merge window.
func MergeObservationsInto(dst []NATObservation, groups ...[]NATObservation) []NATObservation {
	dst = dst[:0]
	for g, group := range groups {
		if !obsSorted(group) {
			cp := append([]NATObservation(nil), group...)
			sort.Slice(cp, func(i, j int) bool { return cp[i].Addr < cp[j].Addr })
			groups[g] = cp
		}
	}
	var idxBuf [16]int
	var idx []int
	if len(groups) <= len(idxBuf) {
		idx = idxBuf[:len(groups)]
	} else {
		idx = make([]int, len(groups))
	}
	for {
		best := -1
		var bestAddr iputil.Addr
		for g, group := range groups {
			if idx[g] >= len(group) {
				continue
			}
			if a := group[idx[g]].Addr; best < 0 || a < bestAddr {
				best, bestAddr = g, a
			}
		}
		if best < 0 {
			return dst
		}
		merged := groups[best][idx[best]]
		idx[best]++
		// Consume every remaining observation of this address, across all
		// groups and within each (a group may carry duplicates).
		for g, group := range groups {
			for idx[g] < len(group) && group[idx[g]].Addr == bestAddr {
				o := group[idx[g]]
				if o.Users > merged.Users {
					merged.Users = o.Users
				}
				if o.PortsSeen > merged.PortsSeen {
					merged.PortsSeen = o.PortsSeen
				}
				if o.FirstConfirmed.Before(merged.FirstConfirmed) {
					merged.FirstConfirmed = o.FirstConfirmed
				}
				idx[g]++
			}
		}
		dst = append(dst, merged)
	}
}

func obsSorted(g []NATObservation) bool {
	for i := 1; i < len(g); i++ {
		if g[i].Addr < g[i-1].Addr {
			return false
		}
	}
	return true
}

// MergeStats combines per-vantage crawl statistics: counters add up, unique
// counts take the union sizes supplied by the caller (pass the merged sets'
// sizes), and the response rate is recomputed over the combined traffic —
// never averaged, so a merge of all-zero stats stays 0 instead of NaN.
//
// SimultaneousMax is the maximum across vantages, not the sum: each
// vantage's value is a lower bound on simultaneous users behind one
// address, established by one ping round's distinct (port, node_id) count.
// Two vantages may count the same users, so adding the bounds could exceed
// the truth; the largest single bound is the tightest claim that is still
// guaranteed valid. The merge is order-invariant: every field is a sum, a
// max, or derived from sums.
func MergeStats(stats ...Stats) Stats {
	var out Stats
	for _, s := range stats {
		out.GetNodesSent += s.GetNodesSent
		out.GetNodesReplies += s.GetNodesReplies
		out.PingsSent += s.PingsSent
		out.PingReplies += s.PingReplies
		out.Timeouts += s.Timeouts
		out.Retries += s.Retries
		out.LateReplies += s.LateReplies
		out.Evicted += s.Evicted
		out.ScopeSuppressed += s.ScopeSuppressed
		out.PingRoundsRun += s.PingRoundsRun
		out.SweepsRun += s.SweepsRun
		if s.SimultaneousMax > out.SimultaneousMax {
			out.SimultaneousMax = s.SimultaneousMax
		}
	}
	out.MessagesSent = out.GetNodesSent + out.PingsSent
	out.MessagesReceived = out.GetNodesReplies + out.PingReplies
	if out.MessagesSent > 0 {
		out.ResponseRate = float64(out.MessagesReceived) / float64(out.MessagesSent)
	}
	return out
}
