package crawler

import (
	"sort"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// The paper notes its single-vantage crawler concentrated all reply traffic
// on one network and suggests "having the crawler at multiple vantage
// points in different networks" (§3.1). This file merges the results of
// several crawler instances into one view.

// MergeObservations unions NAT observations from multiple vantage points:
// an address is NATed if any vantage confirmed it; the user lower bound is
// the maximum any vantage established (each is a valid lower bound); ports
// seen and the earliest confirmation are combined.
func MergeObservations(groups ...[]NATObservation) []NATObservation {
	byAddr := make(map[iputil.Addr]NATObservation)
	for _, group := range groups {
		for _, o := range group {
			cur, ok := byAddr[o.Addr]
			if !ok {
				byAddr[o.Addr] = o
				continue
			}
			if o.Users > cur.Users {
				cur.Users = o.Users
			}
			if o.PortsSeen > cur.PortsSeen {
				cur.PortsSeen = o.PortsSeen
			}
			if o.FirstConfirmed.Before(cur.FirstConfirmed) {
				cur.FirstConfirmed = o.FirstConfirmed
			}
			byAddr[o.Addr] = cur
		}
	}
	out := make([]NATObservation, 0, len(byAddr))
	for _, o := range byAddr {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// MergeStats combines per-vantage crawl statistics: counters add up, unique
// counts take the union sizes supplied by the caller (pass the merged sets'
// sizes), and the response rate is recomputed over the combined traffic —
// never averaged, so a merge of all-zero stats stays 0 instead of NaN.
//
// SimultaneousMax is the maximum across vantages, not the sum: each
// vantage's value is a lower bound on simultaneous users behind one
// address, established by one ping round's distinct (port, node_id) count.
// Two vantages may count the same users, so adding the bounds could exceed
// the truth; the largest single bound is the tightest claim that is still
// guaranteed valid. The merge is order-invariant: every field is a sum, a
// max, or derived from sums.
func MergeStats(stats ...Stats) Stats {
	var out Stats
	for _, s := range stats {
		out.GetNodesSent += s.GetNodesSent
		out.GetNodesReplies += s.GetNodesReplies
		out.PingsSent += s.PingsSent
		out.PingReplies += s.PingReplies
		out.Timeouts += s.Timeouts
		out.Retries += s.Retries
		out.LateReplies += s.LateReplies
		out.Evicted += s.Evicted
		out.ScopeSuppressed += s.ScopeSuppressed
		out.PingRoundsRun += s.PingRoundsRun
		out.SweepsRun += s.SweepsRun
		if s.SimultaneousMax > out.SimultaneousMax {
			out.SimultaneousMax = s.SimultaneousMax
		}
	}
	out.MessagesSent = out.GetNodesSent + out.PingsSent
	out.MessagesReceived = out.GetNodesReplies + out.PingReplies
	if out.MessagesSent > 0 {
		out.ResponseRate = float64(out.MessagesReceived) / float64(out.MessagesSent)
	}
	return out
}
