// Property tests for the offline NAT post-processor: Replay's sliding-window
// lower bound must be order-independent and monotone under added evidence,
// for random message logs — not just the handcrafted cases in log_test.go.
package crawler

import (
	"math/rand"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/krpc"
)

// genLog builds a random ping-reply log over nAddrs gateways, each with a
// random pool of (port, node-ID) endpoints replying at random times. Every
// event gets a unique timestamp so replay order is fully determined.
func genLog(rng *rand.Rand, nAddrs, maxEndpoints, nEvents int) []LogEvent {
	type endpoint struct {
		port uint16
		id   krpc.NodeID
	}
	pools := make(map[iputil.Addr][]endpoint, nAddrs)
	addrs := make([]iputil.Addr, 0, nAddrs)
	for i := 0; i < nAddrs; i++ {
		a := iputil.AddrFrom4(10, 1, byte(i>>8), byte(i+1))
		addrs = append(addrs, a)
		n := 1 + rng.Intn(maxEndpoints)
		pool := make([]endpoint, n)
		for j := range pool {
			var id krpc.NodeID
			rng.Read(id[:])
			pool[j] = endpoint{port: uint16(1024 + rng.Intn(60000)), id: id}
		}
		pools[a] = pool
	}
	events := make([]LogEvent, 0, nEvents)
	base := time.Date(2019, 8, 3, 0, 0, 0, 0, time.UTC)
	for i := 0; i < nEvents; i++ {
		a := addrs[rng.Intn(len(addrs))]
		e := pools[a][rng.Intn(len(pools[a]))]
		events = append(events, LogEvent{
			// Unique, strictly increasing jittered timestamps.
			At:     base.Add(time.Duration(i)*137*time.Millisecond + time.Duration(rng.Intn(1000))*time.Microsecond),
			Kind:   EvPingRx,
			Addr:   a,
			Port:   e.port,
			NodeID: e.id,
			HasID:  true,
		})
	}
	return events
}

func observationsByAddr(obs []NATObservation) map[iputil.Addr]NATObservation {
	m := make(map[iputil.Addr]NATObservation, len(obs))
	for _, o := range obs {
		m[o.Addr] = o
	}
	return m
}

func TestReplayOrderInvariance(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		events := genLog(rng, 5, 6, 300)
		base := Replay(events, time.Minute)

		shuffled := append([]LogEvent(nil), events...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := Replay(shuffled, time.Minute)

		bm, gm := observationsByAddr(base), observationsByAddr(got)
		if len(bm) != len(gm) {
			t.Fatalf("seed %d: %d observations became %d after shuffling the log", seed, len(bm), len(gm))
		}
		for a, b := range bm {
			g, ok := gm[a]
			if !ok || g.Users != b.Users {
				t.Fatalf("seed %d: %s users %d became %v after shuffling", seed, a, b.Users, g)
			}
		}
	}
}

// TestReplayMonotoneUnderAddedReplies: appending reply events can only add
// evidence — no address may lose its NATed flag, and no user lower bound may
// decrease. This is the generalization the end-to-end pipeline cannot test
// (changing a world perturbs every downstream RNG stream); at the replay
// layer it is a theorem of the max-over-windows min(ports, IDs) bound.
func TestReplayMonotoneUnderAddedReplies(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		events := genLog(rng, 4, 6, 200)
		extra := genLog(rand.New(rand.NewSource(seed+1000)), 6, 8, 120)

		before := observationsByAddr(Replay(events, time.Minute))
		after := observationsByAddr(Replay(append(append([]LogEvent(nil), events...), extra...), time.Minute))

		for a, b := range before {
			g, ok := after[a]
			if !ok {
				t.Fatalf("seed %d: %s lost its NATed observation after adding replies", seed, a)
			}
			if g.Users < b.Users {
				t.Fatalf("seed %d: %s user bound decreased %d -> %d after adding replies",
					seed, a, b.Users, g.Users)
			}
		}
	}
}

// TestReplayBoundSoundness: the reported user count can never exceed the
// number of distinct endpoints that actually replied from the address, and
// confirmed observations always carry at least two users.
func TestReplayBoundSoundness(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed + 200))
		events := genLog(rng, 6, 5, 250)
		distinctPorts := make(map[iputil.Addr]map[uint16]bool)
		for _, e := range events {
			if distinctPorts[e.Addr] == nil {
				distinctPorts[e.Addr] = make(map[uint16]bool)
			}
			distinctPorts[e.Addr][e.Port] = true
		}
		for _, o := range Replay(events, time.Minute) {
			if o.Users < 2 {
				t.Fatalf("seed %d: observation %s with %d users below the confirmation rule", seed, o.Addr, o.Users)
			}
			if n := len(distinctPorts[o.Addr]); o.Users > n {
				t.Fatalf("seed %d: %s claims %d users but only %d distinct ports replied", seed, o.Addr, o.Users, n)
			}
		}
	}
}
