// Package crawler implements the paper's BitTorrent NAT-detection crawler
// (§3.1). The crawler walks the DHT with get_nodes (KRPC find_node)
// messages, remembers every (IP, port, node_id) it observes, and
// periodically verifies multi-port IPs with bt_ping (KRPC ping) rounds: an
// IP answering on two or more ports with two or more distinct node IDs in
// the same round is simultaneously shared — a NATed reused address — and the
// number of simultaneously responding ports is a lower bound on the users
// behind it.
//
// Operational behaviour follows the paper: messages are issued in discovery
// order, an IP is not recontacted for a cool-down period (20 minutes) after
// a batch of messages, ping rounds run hourly, and crawling can be
// restricted to a scope (the blocklisted address space) to avoid unnecessary
// probing.
package crawler

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"github.com/reuseblock/reuseblock/internal/dht"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/krpc"
	"github.com/reuseblock/reuseblock/internal/netsim"
	"github.com/reuseblock/reuseblock/internal/obs"
)

// Config tunes the crawler.
type Config struct {
	// ID is the crawler's DHT identity; zero derives one from Seed.
	ID krpc.NodeID
	// Bootstrap endpoints seed discovery (the DHT bootstrap node of §3.1).
	Bootstrap []netsim.Endpoint
	// Scope restricts probing to addresses for which it returns true; nil
	// crawls everything. The paper restricts to blocklisted /24 space.
	Scope func(iputil.Addr) bool
	// Cooldown is the per-IP recontact interval (paper: 20 minutes).
	Cooldown time.Duration
	// PingInterval is the period of bt_ping verification rounds (paper:
	// hourly).
	PingInterval time.Duration
	// PingWindow is how long a round waits before scoring replies.
	PingWindow time.Duration
	// SweepInterval is the period of discovery sweeps re-querying known
	// endpoints for new neighbours.
	SweepInterval time.Duration
	// Tick is the pump granularity; BatchPerTick messages are issued per
	// tick so the crawler is rate-limited as the paper describes.
	Tick         time.Duration
	BatchPerTick int
	// QueryTimeout bounds response waits.
	QueryTimeout time.Duration
	// MaxRetries is how many extra transmissions a query gets after a
	// timeout before it is scored a failure. Retries back off
	// exponentially from RetryBase with deterministic jitter drawn from
	// the crawler RNG. Zero (the default) disables retries entirely: a
	// fault-free crawl issues exactly the same messages and consumes
	// exactly the same RNG draws as before this knob existed.
	MaxRetries int
	// RetryBase is the first retry's backoff; doubling per attempt.
	// Defaults to 1s when MaxRetries > 0.
	RetryBase time.Duration
	// EvictAfter evicts an endpoint from the discovery frontier once this
	// many consecutive queries to it failed (all retries exhausted); any
	// reply — even a late one — resurrects it. Zero disables eviction.
	EvictAfter int
	// Limiter, when non-nil, is the fleet rate-budget hook: before issuing
	// a discovery batch the pump asks it for up to BatchPerTick sends and
	// issues only what is granted. Verification ping rounds are exempt —
	// the simultaneity measurement needs all ports of an IP probed in one
	// window. The limiter must be a deterministic function of the clock it
	// is driven by (fleet.TokenBucket on the simulated clock qualifies), or
	// crawl reproducibility is lost.
	Limiter Limiter
	// MaxInflight bounds outstanding discovery queries: the pump stops
	// issuing when that many transactions await responses — the fleet's
	// bounded in-flight request queue. Zero (the default) is unbounded.
	MaxInflight int
	// MaxPerNode bounds concurrent outstanding queries to a single
	// endpoint; a frontier entry whose node is already at the bound is
	// dropped from the queue like a cooled-down one (the next sweep
	// re-enqueues every known endpoint). Zero is unbounded.
	MaxPerNode int
	// Seed drives the crawler's RNG (lookup targets, transaction IDs).
	Seed int64
	// EventLog, when non-nil, receives one line per message sent and
	// received (the paper's message log); Replay reprocesses such logs
	// into NAT determinations offline.
	EventLog io.Writer
	// Obs, when non-nil, receives the crawl's final counters (queries
	// sent, retries, late replies, evictions, …) when Stop runs. Counts
	// are taken from the per-crawler Stats — deterministic per seed — and
	// added atomically, so multi-vantage sums are worker-invariant.
	Obs *obs.Registry
	// Trace, when non-nil, is the parent span (typically the vantage span)
	// under which the crawler opens one child span per query batch: each
	// ping round and each discovery sweep.
	Trace *obs.Span
}

func (c *Config) applyDefaults() {
	if c.Cooldown <= 0 {
		c.Cooldown = 20 * time.Minute
	}
	if c.PingInterval <= 0 {
		c.PingInterval = time.Hour
	}
	if c.PingWindow <= 0 {
		c.PingWindow = 30 * time.Second
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = time.Hour
	}
	if c.Tick <= 0 {
		c.Tick = time.Second
	}
	if c.BatchPerTick <= 0 {
		c.BatchPerTick = 256
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 5 * time.Second
	}
	if c.MaxRetries > 0 && c.RetryBase <= 0 {
		c.RetryBase = time.Second
	}
}

// Stats mirrors the crawl statistics reported in §4 of the paper.
type Stats struct {
	GetNodesSent     int64
	GetNodesReplies  int64
	PingsSent        int64
	PingReplies      int64
	Timeouts         int64
	Retries          int64 // retransmissions after a query timeout
	LateReplies      int64 // responses that arrived after their query was scored a timeout
	Evicted          int64 // endpoints dropped from the frontier as persistently dead
	UniqueIPs        int   // unique BitTorrent IPs observed
	UniqueNodeIDs    int   // unique node_ids observed
	NATedIPs         int   // IPs confirmed NATed
	MultiPortIPs     int   // IPs that ever showed >1 port
	ScopeSuppressed  int64
	ResponseRate     float64 // replies / (pings + get_nodes)
	SimultaneousMax  int     // largest simultaneous-user lower bound
	PingRoundsRun    int
	SweepsRun        int
	MessagesSent     int64
	MessagesReceived int64
}

// NATObservation describes one confirmed NATed address.
type NATObservation struct {
	Addr iputil.Addr
	// Users is the lower bound on simultaneous users: the maximum number
	// of distinct (port, node_id) pairs that answered one ping round.
	Users int
	// FirstConfirmed is when the first positive round completed.
	FirstConfirmed time.Time
	// PortsSeen is how many distinct ports were ever observed.
	PortsSeen int
}

type portInfo struct {
	firstSeen time.Time
	lastSeen  time.Time
	nodeIDs   map[krpc.NodeID]bool
}

type ipRecord struct {
	addr         iputil.Addr
	ports        map[uint16]*portInfo
	lastContact  time.Time
	natConfirmed bool
	firstConfirm time.Time
	maxUsers     int
	// roundReplies collects (port -> node ID) during the active ping round.
	roundReplies map[uint16]krpc.NodeID
	inRound      bool
}

// Limiter is the crawl-budget hook consulted by the discovery pump; see
// Config.Limiter. fleet.TokenBucket implements it.
type Limiter interface {
	// Take requests up to n message sends at now and returns how many are
	// granted (0..n).
	Take(now time.Time, n int) int
}

// lateWindowMax bounds how many timed-out transactions are remembered for
// late-reply accounting; the oldest are forgotten first.
const lateWindowMax = 4096

// Crawler is the NAT-detection crawler.
type Crawler struct {
	cfg     Config
	sock    netsim.Socket
	clock   dht.Clock
	rng     *rand.Rand
	id      krpc.NodeID
	txSeq   uint64
	tx      *TxManager
	ips     map[iputil.Addr]*ipRecord
	nodeIDs map[krpc.NodeID]bool
	queue   []netsim.Endpoint
	queued  map[netsim.Endpoint]bool
	stats   Stats
	running bool
	stopped bool
	stops   []func() bool
	// failures counts consecutive dead queries per endpoint; endpoints
	// reaching EvictAfter enter evicted and leave the frontier.
	failures map[netsim.Endpoint]int
	evicted  map[netsim.Endpoint]bool
}

// New builds a crawler on the given socket.
func New(sock netsim.Socket, clock dht.Clock, cfg Config) *Crawler {
	cfg.applyDefaults()
	id := cfg.ID
	if id == (krpc.NodeID{}) {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(cfg.Seed))
		id = krpc.GenerateNodeID(iputil.Addr(cfg.Seed), uint64(cfg.Seed))
	}
	c := &Crawler{
		cfg:     cfg,
		sock:    sock,
		clock:   clock,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		id:      id,
		tx:      NewTxManager(lateWindowMax),
		ips:     make(map[iputil.Addr]*ipRecord),
		nodeIDs: make(map[krpc.NodeID]bool),
		queued:  make(map[netsim.Endpoint]bool),
	}
	if cfg.EvictAfter > 0 {
		c.failures = make(map[netsim.Endpoint]int)
		c.evicted = make(map[netsim.Endpoint]bool)
	}
	sock.SetHandler(c.handle)
	return c
}

// Start begins crawling: bootstrap targets are enqueued, the pump starts,
// and sweep and ping-round timers are armed.
func (c *Crawler) Start() {
	if c.running || c.stopped {
		return
	}
	c.running = true
	// Bootstrap burst: UDP makes a single contact attempt flaky, so the
	// entry points are retried a few times at start-up. Endpoints that
	// answered are in cool-down by then and the retry is dropped.
	for i := 0; i < 3; i++ {
		delay := time.Duration(i) * c.cfg.Cooldown
		stop := c.clock.After(delay, func() {
			if !c.running {
				return
			}
			for _, ep := range c.cfg.Bootstrap {
				c.enqueue(ep)
			}
		})
		c.stops = append(c.stops, stop)
	}
	c.scheduleTick()
	c.schedulePingRound()
	c.scheduleSweep()
}

// Stop halts all crawler activity; observations remain queryable.
func (c *Crawler) Stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	c.running = false
	for _, stop := range c.stops {
		stop()
	}
	c.stops = nil
	c.tx.CancelAll()
	c.recordObs()
}

// recordObs pushes the crawl's final statistics into the configured
// registry — once, when the crawl stops. The counts come from the crawler's
// own Stats (a deterministic function of the seed), and counter adds are
// atomic sums, so per-vantage crawlers running on any worker schedule
// produce identical registry totals.
func (c *Crawler) recordObs() {
	reg := c.cfg.Obs
	if reg == nil {
		return
	}
	st := c.Stats()
	reg.Counter("crawler_get_nodes_sent_total").Add(st.GetNodesSent)
	reg.Counter("crawler_pings_sent_total").Add(st.PingsSent)
	reg.Counter("crawler_replies_total").Add(st.MessagesReceived)
	reg.Counter("crawler_timeouts_total").Add(st.Timeouts)
	reg.Counter("crawler_retries_total").Add(st.Retries)
	reg.Counter("crawler_late_replies_total").Add(st.LateReplies)
	reg.Counter("crawler_evicted_total").Add(st.Evicted)
	reg.Counter("crawler_scope_suppressed_total").Add(st.ScopeSuppressed)
	reg.Counter("crawler_ping_rounds_total").Add(int64(st.PingRoundsRun))
	reg.Counter("crawler_sweeps_total").Add(int64(st.SweepsRun))
	reg.Counter("crawler_unique_ips_total").Add(int64(st.UniqueIPs))
	reg.Counter("crawler_nated_ips_total").Add(int64(st.NATedIPs))
	h := reg.Histogram("crawler_nat_users", []float64{2, 3, 4, 8, 16, 32, 64})
	for _, o := range c.NATed() {
		h.Observe(float64(o.Users))
	}
}

// Stats returns a snapshot of crawl statistics.
func (c *Crawler) Stats() Stats {
	s := c.stats
	s.UniqueIPs = len(c.ips)
	s.UniqueNodeIDs = len(c.nodeIDs)
	nated, multi, maxUsers := 0, 0, 0
	for _, rec := range c.ips {
		if rec.natConfirmed {
			nated++
			if rec.maxUsers > maxUsers {
				maxUsers = rec.maxUsers
			}
		}
		if len(rec.ports) > 1 {
			multi++
		}
	}
	s.NATedIPs, s.MultiPortIPs, s.SimultaneousMax = nated, multi, maxUsers
	s.MessagesSent = s.GetNodesSent + s.PingsSent
	s.MessagesReceived = s.GetNodesReplies + s.PingReplies
	if s.MessagesSent > 0 {
		s.ResponseRate = float64(s.MessagesReceived) / float64(s.MessagesSent)
	}
	return s
}

// InFlight returns the number of currently outstanding query transactions —
// the live depth of the bounded in-flight queue, reported in fleet worker
// heartbeats.
func (c *Crawler) InFlight() int { return c.tx.InFlight() }

// NATed returns all confirmed NATed addresses sorted by address.
func (c *Crawler) NATed() []NATObservation {
	var out []NATObservation
	for _, rec := range c.ips {
		if rec.natConfirmed {
			out = append(out, NATObservation{
				Addr:           rec.addr,
				Users:          rec.maxUsers,
				FirstConfirmed: rec.firstConfirm,
				PortsSeen:      len(rec.ports),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// ObservedIPs returns every BitTorrent IP the crawler has seen.
func (c *Crawler) ObservedIPs() *iputil.Set {
	s := iputil.NewSet()
	for a := range c.ips {
		s.Add(a)
	}
	return s
}

// MultiPortAddrs returns every IP that ever showed more than one port —
// the naive NAT signal before bt_ping verification. Comparing it with
// NATed() quantifies how many would-be false positives (port changes,
// stale entries) the paper's verification rule removes.
func (c *Crawler) MultiPortAddrs() *iputil.Set {
	s := iputil.NewSet()
	for a, rec := range c.ips {
		if len(rec.ports) > 1 {
			s.Add(a)
		}
	}
	return s
}

func (c *Crawler) inScope(a iputil.Addr) bool {
	return c.cfg.Scope == nil || c.cfg.Scope(a)
}

func (c *Crawler) enqueue(ep netsim.Endpoint) {
	if c.queued[ep] || c.evicted[ep] {
		return
	}
	if !c.inScope(ep.Addr) {
		c.stats.ScopeSuppressed++
		return
	}
	c.queued[ep] = true
	c.queue = append(c.queue, ep)
}

func (c *Crawler) scheduleTick() {
	stop := c.clock.After(c.cfg.Tick, func() {
		if !c.running {
			return
		}
		c.pump()
		c.scheduleTick()
	})
	c.stops = append(c.stops, stop)
}

func (c *Crawler) scheduleSweep() {
	stop := c.clock.After(c.cfg.SweepInterval, func() {
		if !c.running {
			return
		}
		c.sweep()
		c.scheduleSweep()
	})
	c.stops = append(c.stops, stop)
}

func (c *Crawler) schedulePingRound() {
	stop := c.clock.After(c.cfg.PingInterval, func() {
		if !c.running {
			return
		}
		c.pingRound()
		c.schedulePingRound()
	})
	c.stops = append(c.stops, stop)
}

// pump issues up to BatchPerTick get_nodes messages from the front of the
// discovery queue, honouring the per-IP cool-down. Endpoints whose IP is in
// cool-down are dropped from the queue (not rotated — that would make idle
// ticks quadratic); the next sweep re-enqueues every known endpoint anyway.
// Under a fleet budget the batch additionally shrinks to what the Limiter
// grants, and issuing pauses while MaxInflight transactions are outstanding.
func (c *Crawler) pump() {
	now := c.clock.Now()
	batch := c.cfg.BatchPerTick
	if c.cfg.Limiter != nil {
		batch = c.cfg.Limiter.Take(now, batch)
	}
	sent := 0
	for len(c.queue) > 0 && sent < batch {
		if c.cfg.MaxInflight > 0 && c.tx.InFlight() >= c.cfg.MaxInflight {
			break
		}
		ep := c.queue[0]
		c.queue = c.queue[1:]
		delete(c.queued, ep)
		rec := c.ips[ep.Addr]
		if rec != nil && now.Sub(rec.lastContact) < c.cfg.Cooldown {
			continue
		}
		if c.cfg.MaxPerNode > 0 && c.tx.Outstanding(ep) >= c.cfg.MaxPerNode {
			continue
		}
		if rec != nil {
			rec.lastContact = now
		}
		var target krpc.NodeID
		c.rng.Read(target[:])
		c.sendQuery(ep, krpc.NewFindNode(c.newTx(), c.id, target), false)
		sent++
	}
}

// sweep re-enqueues every known endpoint so ongoing crawling discovers new
// ports and users.
func (c *Crawler) sweep() {
	c.stats.SweepsRun++
	// Query-batch span: the sweep's frontier size is simulation state, so
	// the attribute is deterministic; only the wall fields vary.
	sp := c.cfg.Trace.Child(fmt.Sprintf("sweep %04d", c.stats.SweepsRun))
	defer func() {
		sp.SetAttr(obs.Int("known_ips", int64(len(c.ips))))
		sp.End()
	}()
	for _, ep := range c.cfg.Bootstrap {
		c.enqueue(ep)
	}
	type key struct {
		a iputil.Addr
		p uint16
	}
	var all []key
	for addr, rec := range c.ips {
		for port := range rec.ports {
			all = append(all, key{addr, port})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].a != all[j].a {
			return all[i].a < all[j].a
		}
		return all[i].p < all[j].p
	})
	for _, k := range all {
		c.enqueue(netsim.Endpoint{Addr: k.a, Port: k.p})
	}
}

// pingRound sends bt_ping to every discovered port of every multi-port IP
// and scores replies after PingWindow.
func (c *Crawler) pingRound() {
	c.stats.PingRoundsRun++
	sp := c.cfg.Trace.Child(fmt.Sprintf("ping round %04d", c.stats.PingRoundsRun))
	now := c.clock.Now()
	var candidates []*ipRecord
	for _, rec := range c.ips {
		if len(rec.ports) < 2 || !c.inScope(rec.addr) {
			continue
		}
		candidates = append(candidates, rec)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].addr < candidates[j].addr })
	for _, rec := range candidates {
		rec.inRound = true
		rec.roundReplies = make(map[uint16]krpc.NodeID)
		rec.lastContact = now
		ports := make([]int, 0, len(rec.ports))
		for p := range rec.ports {
			ports = append(ports, int(p))
		}
		sort.Ints(ports)
		for _, p := range ports {
			c.sendQuery(netsim.Endpoint{Addr: rec.addr, Port: uint16(p)}, krpc.NewPing(c.newTx(), c.id), true)
		}
	}
	sp.SetAttr(obs.Int("candidates", int64(len(candidates))))
	sp.End()
	if len(candidates) == 0 {
		return
	}
	stop := c.clock.After(c.cfg.PingWindow, func() {
		c.scoreRound(candidates)
	})
	c.stops = append(c.stops, stop)
}

// scoreRound applies the paper's rule: an IP is NATed when at least two
// distinct ports replied with at least two distinct node IDs in one round.
func (c *Crawler) scoreRound(candidates []*ipRecord) {
	now := c.clock.Now()
	for _, rec := range candidates {
		if !rec.inRound {
			continue
		}
		rec.inRound = false
		distinctIDs := make(map[krpc.NodeID]bool)
		respondingPorts := 0
		for _, id := range rec.roundReplies {
			respondingPorts++
			distinctIDs[id] = true
		}
		// Simultaneous users is bounded below by distinct (port, id)
		// pairs with distinct IDs.
		users := len(distinctIDs)
		if respondingPorts < users {
			users = respondingPorts
		}
		if respondingPorts >= 2 && len(distinctIDs) >= 2 {
			if !rec.natConfirmed {
				rec.natConfirmed = true
				rec.firstConfirm = now
			}
			if users > rec.maxUsers {
				rec.maxUsers = users
			}
		}
		rec.roundReplies = nil
	}
}

func (c *Crawler) sendQuery(to netsim.Endpoint, msg *krpc.Message, isPing bool) {
	data, err := msg.Marshal()
	if err != nil {
		return
	}
	tx := &Tx{ID: msg.TxID, To: to, IsPing: isPing, Data: data, Attempts: 1}
	c.tx.Register(tx)
	tx.Stop = c.armTimeout(tx.ID)
	if isPing {
		c.stats.PingsSent++
		c.logEvent(LogEvent{At: c.clock.Now(), Kind: EvPingTx, Addr: to.Addr, Port: to.Port})
	} else {
		c.stats.GetNodesSent++
		c.logEvent(LogEvent{At: c.clock.Now(), Kind: EvGetNodesTx, Addr: to.Addr, Port: to.Port})
	}
	c.sock.Send(to, data)
}

// armTimeout starts the response deadline for a pending transaction.
func (c *Crawler) armTimeout(tx string) func() bool {
	return c.clock.After(c.cfg.QueryTimeout, func() { c.queryTimeout(tx) })
}

// queryTimeout fires when a transaction's deadline passes unanswered: either
// the query earns a retry (exponential backoff plus deterministic jitter) or
// it is scored a failure — counted as a timeout, remembered for late-reply
// accounting, and charged against the endpoint's failure score.
func (c *Crawler) queryTimeout(tx string) {
	p, ok := c.tx.Get(tx)
	if !ok {
		return
	}
	if c.running && p.Attempts <= c.cfg.MaxRetries {
		c.stats.Retries++
		backoff := c.cfg.RetryBase << (p.Attempts - 1)
		backoff += time.Duration(c.rng.Int63n(int64(backoff)/2 + 1))
		p.Stop = c.clock.After(backoff, func() { c.retransmit(tx) })
		return
	}
	c.tx.Fail(tx)
	c.stats.Timeouts++
	c.noteFailure(p.To)
}

func (c *Crawler) retransmit(tx string) {
	p, ok := c.tx.Get(tx)
	if !ok || !c.running {
		return
	}
	p.Attempts++
	p.Stop = c.armTimeout(tx)
	c.sock.Send(p.To, p.Data)
}

// noteFailure charges one dead query against an endpoint; at EvictAfter
// consecutive failures the endpoint leaves the discovery frontier.
func (c *Crawler) noteFailure(ep netsim.Endpoint) {
	if c.cfg.EvictAfter <= 0 {
		return
	}
	c.failures[ep]++
	if c.failures[ep] >= c.cfg.EvictAfter && !c.evicted[ep] {
		c.evicted[ep] = true
		c.stats.Evicted++
	}
}

// noteSuccess clears an endpoint's failure score; a reply — even a late one
// — proves it alive and resurrects it if evicted.
func (c *Crawler) noteSuccess(ep netsim.Endpoint) {
	if c.cfg.EvictAfter <= 0 {
		return
	}
	delete(c.failures, ep)
	delete(c.evicted, ep)
}

func (c *Crawler) logEvent(ev LogEvent) {
	if c.cfg.EventLog == nil {
		return
	}
	_ = writeEvent(c.cfg.EventLog, ev)
}

// handle processes crawler responses.
func (c *Crawler) handle(from netsim.Endpoint, payload []byte) {
	if c.stopped {
		return
	}
	m, err := krpc.Unmarshal(payload)
	if err != nil {
		return
	}
	switch m.Kind {
	case krpc.KindResponse:
		p, ok := c.tx.Resolve(m.TxID)
		if !ok {
			// A response to a query already scored a timeout: count it,
			// log it, and clear the endpoint's failure score, but do not
			// feed it into discovery — its round is over.
			if to, late := c.tx.ResolveLate(m.TxID); late {
				c.stats.LateReplies++
				c.noteSuccess(to)
				c.logEvent(LogEvent{At: c.clock.Now(), Kind: EvLateRx, Addr: from.Addr, Port: from.Port, NodeID: m.ID, HasID: true})
			}
			return
		}
		c.noteSuccess(p.To)
		// Responses can legitimately come from a different port than the
		// one probed (NAT rewriting); record what we actually saw.
		c.observe(from, m.ID, c.clock.Now())
		if p.IsPing {
			c.stats.PingReplies++
			c.logEvent(LogEvent{At: c.clock.Now(), Kind: EvPingRx, Addr: from.Addr, Port: from.Port, NodeID: m.ID, HasID: true})
			rec := c.ips[from.Addr]
			if rec != nil && rec.inRound {
				rec.roundReplies[from.Port] = m.ID
			}
		} else {
			c.stats.GetNodesReplies++
			c.logEvent(LogEvent{At: c.clock.Now(), Kind: EvGetNodesRx, Addr: from.Addr, Port: from.Port, NodeID: m.ID, HasID: true})
			for _, info := range m.Nodes {
				c.logEvent(LogEvent{At: c.clock.Now(), Kind: EvObserve, Addr: info.Addr, Port: info.Port, NodeID: info.ID, HasID: true})
				c.observe(netsim.Endpoint{Addr: info.Addr, Port: info.Port}, info.ID, c.clock.Now())
				c.enqueue(netsim.Endpoint{Addr: info.Addr, Port: info.Port})
			}
		}
	case krpc.KindQuery:
		// The crawler is a passive DHT citizen: it answers pings so it is
		// not evicted from peers' tables, but returns no neighbours.
		if m.Method == krpc.MethodPing {
			resp := krpc.NewPingResponse(m.TxID, c.id, "")
			if data, err := resp.Marshal(); err == nil {
				c.sock.Send(from, data)
			}
		}
	}
}

// observe records an (endpoint, node ID) sighting.
func (c *Crawler) observe(ep netsim.Endpoint, id krpc.NodeID, now time.Time) {
	if !c.inScope(ep.Addr) {
		c.stats.ScopeSuppressed++
		return
	}
	c.nodeIDs[id] = true
	rec := c.ips[ep.Addr]
	if rec == nil {
		rec = &ipRecord{addr: ep.Addr, ports: make(map[uint16]*portInfo)}
		c.ips[ep.Addr] = rec
	}
	pi := rec.ports[ep.Port]
	if pi == nil {
		pi = &portInfo{firstSeen: now, nodeIDs: make(map[krpc.NodeID]bool)}
		rec.ports[ep.Port] = pi
	}
	pi.lastSeen = now
	pi.nodeIDs[id] = true
}

func (c *Crawler) newTx() string {
	c.txSeq++
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], c.txSeq)
	return string(b[:])
}
