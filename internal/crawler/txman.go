package crawler

import (
	"github.com/reuseblock/reuseblock/internal/netsim"
)

// Tx is one outstanding query transaction: the wire ID, the node it went
// to, and everything needed to retransmit or score it. The crawler keeps a
// Tx alive across retries; it is released when a response arrives or the
// last retry times out.
type Tx struct {
	ID     string
	To     netsim.Endpoint
	IsPing bool
	// Data is the marshalled query, kept for retransmission.
	Data []byte
	// Attempts counts transmissions so far (1 after the first send).
	Attempts int
	// Stop cancels the currently armed response deadline.
	Stop func() bool
}

// TxManager correlates KRPC transactions with the node each query went to.
// A crawler legitimately has several queries outstanding to the same node at
// once — a discovery get_nodes and a verification bt_ping, or pings to two
// ports of one NATed address — so correlation is per transaction, with a
// per-node outstanding count layered on top for politeness bounds and
// in-flight accounting (the fleet's bounded in-flight request queue).
//
// It also owns the late-reply window: transactions whose query timed out are
// remembered (bounded, FIFO-evicted) so a response straggling in afterwards
// is recognised and counted instead of silently dropped.
//
// The manager is deliberately not goroutine-safe: crawler code is
// single-threaded by design (simulated swarms run on one event loop; real
// sockets serialise through the swarm mutex).
type TxManager struct {
	pending map[string]*Tx
	perNode map[netsim.Endpoint]int
	lateTx  map[string]netsim.Endpoint
	// lateOrder is the late window's FIFO eviction order.
	lateOrder []string
	lateMax   int
}

// NewTxManager returns a manager whose late-reply window remembers up to
// lateWindow timed-out transactions (the oldest are forgotten first).
func NewTxManager(lateWindow int) *TxManager {
	if lateWindow <= 0 {
		lateWindow = lateWindowMax
	}
	return &TxManager{
		pending: make(map[string]*Tx),
		perNode: make(map[netsim.Endpoint]int),
		lateTx:  make(map[string]netsim.Endpoint),
		lateMax: lateWindow,
	}
}

// Register adds a freshly sent query to the outstanding set.
func (m *TxManager) Register(t *Tx) {
	m.pending[t.ID] = t
	m.perNode[t.To]++
}

// Get returns the outstanding transaction without resolving it (retry and
// timeout paths peek first).
func (m *TxManager) Get(id string) (*Tx, bool) {
	t, ok := m.pending[id]
	return t, ok
}

// Resolve removes a transaction whose response arrived, cancelling its
// deadline timer and releasing its per-node slot.
func (m *TxManager) Resolve(id string) (*Tx, bool) {
	t, ok := m.pending[id]
	if !ok {
		return nil, false
	}
	delete(m.pending, id)
	m.releaseNode(t.To)
	t.Stop()
	return t, true
}

// Fail removes a transaction whose deadline passed with every retry
// exhausted (the timer has already fired, so no Stop), releases its
// per-node slot, and remembers it in the late-reply window.
func (m *TxManager) Fail(id string) (*Tx, bool) {
	t, ok := m.pending[id]
	if !ok {
		return nil, false
	}
	delete(m.pending, id)
	m.releaseNode(t.To)
	if len(m.lateOrder) >= m.lateMax {
		delete(m.lateTx, m.lateOrder[0])
		m.lateOrder = m.lateOrder[1:]
	}
	m.lateTx[id] = t.To
	m.lateOrder = append(m.lateOrder, id)
	return t, true
}

// ResolveLate pops a transaction from the late-reply window, returning the
// node its query went to. A transaction resolves late at most once.
func (m *TxManager) ResolveLate(id string) (netsim.Endpoint, bool) {
	to, ok := m.lateTx[id]
	if ok {
		delete(m.lateTx, id)
	}
	return to, ok
}

// InFlight returns the number of outstanding transactions — the fleet's
// bounded in-flight queue consults it before admitting new sends.
func (m *TxManager) InFlight() int { return len(m.pending) }

// Outstanding returns how many queries are currently outstanding to one
// node — the per-node correlation count.
func (m *TxManager) Outstanding(ep netsim.Endpoint) int { return m.perNode[ep] }

// CancelAll stops every outstanding deadline and clears the manager; the
// late window is kept (a stopping crawler still counts stragglers).
func (m *TxManager) CancelAll() {
	for _, t := range m.pending {
		t.Stop()
	}
	m.pending = make(map[string]*Tx)
	m.perNode = make(map[netsim.Endpoint]int)
}

func (m *TxManager) releaseNode(ep netsim.Endpoint) {
	if n := m.perNode[ep]; n <= 1 {
		delete(m.perNode, ep)
	} else {
		m.perNode[ep] = n - 1
	}
}
