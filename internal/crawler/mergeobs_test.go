package crawler

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// refMerge is the pre-refactor map-based merge, kept as the oracle.
func refMerge(groups ...[]NATObservation) []NATObservation {
	byAddr := make(map[iputil.Addr]NATObservation)
	for _, group := range groups {
		for _, o := range group {
			cur, ok := byAddr[o.Addr]
			if !ok {
				byAddr[o.Addr] = o
				continue
			}
			if o.Users > cur.Users {
				cur.Users = o.Users
			}
			if o.PortsSeen > cur.PortsSeen {
				cur.PortsSeen = o.PortsSeen
			}
			if o.FirstConfirmed.Before(cur.FirstConfirmed) {
				cur.FirstConfirmed = o.FirstConfirmed
			}
			byAddr[o.Addr] = cur
		}
	}
	out := make([]NATObservation, 0, len(byAddr))
	for _, o := range byAddr {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

func genObsGroups(rng *rand.Rand, groups, perGroup int) [][]NATObservation {
	base := time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	out := make([][]NATObservation, groups)
	for g := range out {
		for i := 0; i < perGroup; i++ {
			// Small address space forces heavy cross-group overlap.
			out[g] = append(out[g], NATObservation{
				Addr:           iputil.Addr(rng.Intn(perGroup * 2)),
				Users:          2 + rng.Intn(9),
				PortsSeen:      1 + rng.Intn(30),
				FirstConfirmed: base.Add(time.Duration(rng.Intn(3600)) * time.Second),
			})
		}
		sort.Slice(out[g], func(i, j int) bool { return out[g][i].Addr < out[g][j].Addr })
	}
	return out
}

func obsEqual(t *testing.T, got, want []NATObservation, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d observations, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: observation %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestMergeObservationsMatchesReference pins the k-way merge to the map-based
// oracle over randomized overlapping groups, including unsorted inputs.
func TestMergeObservationsMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		groups := genObsGroups(rng, 1+rng.Intn(5), 1+rng.Intn(200))
		want := refMerge(groups...)
		obsEqual(t, MergeObservations(groups...), want, "sorted inputs")

		// An unsorted group must still merge correctly (slow path).
		shuffled := make([][]NATObservation, len(groups))
		for g := range groups {
			cp := append([]NATObservation(nil), groups[g]...)
			rng.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
			shuffled[g] = cp
		}
		obsEqual(t, MergeObservations(shuffled...), want, "unsorted inputs")
	}
}

// TestMergeObservationsOrderInvariant: every combining op is a max or min,
// so permuting the groups must not change a single byte of the result.
func TestMergeObservationsOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	groups := genObsGroups(rng, 4, 300)
	want := MergeObservations(groups...)
	for trial := 0; trial < 8; trial++ {
		perm := rng.Perm(len(groups))
		permuted := make([][]NATObservation, len(groups))
		for i, p := range perm {
			permuted[i] = groups[p]
		}
		obsEqual(t, MergeObservations(permuted...), want, "permuted groups")
	}
}

// TestMergeObservationsIntoZeroAlloc enforces the whole point of the Into
// form: with a capacious dst and sorted groups, merging allocates nothing
// (the budget of 1 tolerates testing-harness noise only).
func TestMergeObservationsIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	groups := genObsGroups(rng, 4, 2000)
	dst := make([]NATObservation, 0, 4*2000)
	allocs := testing.AllocsPerRun(20, func() {
		dst = MergeObservationsInto(dst, groups...)
	})
	if allocs > 1 {
		t.Fatalf("MergeObservationsInto allocated %.1f objects/op, want <= 1", allocs)
	}
	obsEqual(t, dst, refMerge(groups...), "zero-alloc merge result")
}

// TestMergeObservationsIntoReusesDst: successive merges into the same dst
// must not leak earlier results.
func TestMergeObservationsIntoReusesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := genObsGroups(rng, 3, 100)
	b := genObsGroups(rng, 2, 50)
	dst := MergeObservationsInto(nil, a...)
	dst = MergeObservationsInto(dst, b...)
	obsEqual(t, dst, refMerge(b...), "second merge into reused dst")
}

func BenchmarkMergeObservationsInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	groups := genObsGroups(rng, 4, 50000)
	dst := make([]NATObservation, 0, 4*50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = MergeObservationsInto(dst, groups...)
	}
}

func BenchmarkMergeObservationsMap(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	groups := genObsGroups(rng, 4, 50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refMerge(groups...)
	}
}
