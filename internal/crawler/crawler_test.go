package crawler

import (
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/dht"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/krpc"
	"github.com/reuseblock/reuseblock/internal/netsim"
)

// swarm is a small simulated DHT world for crawler tests.
type swarm struct {
	clock *netsim.Clock
	net   *netsim.Network
	nodes []*dht.Node
	eps   []netsim.Endpoint
}

func newSwarm(t *testing.T, publicNodes int, loss float64) *swarm {
	t.Helper()
	clock := netsim.NewClock()
	net, err := netsim.NewNetwork(clock, netsim.Config{
		Loss:          loss,
		LatencyBase:   10 * time.Millisecond,
		LatencyJitter: 20 * time.Millisecond,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := &swarm{clock: clock, net: net}
	for i := 0; i < publicNodes; i++ {
		addr := iputil.AddrFrom4(10, 1, byte(i/200), byte(i%200+1))
		s.addPublicNode(t, addr, 6881, int64(i+1))
	}
	s.mesh()
	return s
}

func (s *swarm) addPublicNode(t *testing.T, addr iputil.Addr, port uint16, seed int64) *dht.Node {
	t.Helper()
	sock, err := s.net.Listen(netsim.Endpoint{Addr: addr, Port: port})
	if err != nil {
		t.Fatal(err)
	}
	n := dht.NewNode(sock, dht.SimClock(s.clock), dht.Config{
		PrivateIP:         addr,
		IDSeed:            uint64(seed),
		Seed:              seed,
		KeepaliveInterval: 5 * time.Minute,
	})
	s.nodes = append(s.nodes, n)
	s.eps = append(s.eps, netsim.Endpoint{Addr: addr, Port: port})
	return n
}

// addNATUsers puts k BitTorrent users behind one NAT and returns the public
// address. Users ping a public node so their mappings open and stay open via
// keepalives.
func (s *swarm) addNATUsers(t *testing.T, pub string, k int, filtering netsim.Filtering) iputil.Addr {
	t.Helper()
	pubAddr := iputil.MustParseAddr(pub)
	nat, err := netsim.NewNAT(s.net, netsim.NATConfig{
		PublicAddr: pubAddr,
		Filtering:  filtering,
		MappingTTL: 30 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		priv := iputil.AddrFrom4(192, 168, 0, byte(i+10))
		sock, err := nat.Listen(priv, 6881)
		if err != nil {
			t.Fatal(err)
		}
		n := dht.NewNode(sock, dht.SimClock(s.clock), dht.Config{
			PrivateIP:         priv,
			IDSeed:            uint64(1000 + i),
			Seed:              int64(1000 + i),
			KeepaliveInterval: 5 * time.Minute,
		})
		s.nodes = append(s.nodes, n)
		// Open the mapping and join the swarm.
		n.Bootstrap(s.eps[i%len(s.eps)], nil)
	}
	return pubAddr
}

// mesh links every public node's routing table to a few others so crawls
// can traverse the full swarm.
func (s *swarm) mesh() {
	for i, n := range s.nodes {
		for j := 1; j <= 4; j++ {
			k := (i + j) % len(s.nodes)
			if k == i {
				continue
			}
			n.AddNode(infoFor(s.nodes[k], s.eps[k].Addr, s.eps[k].Port))
		}
	}
}

// infoFor builds the routing-table entry for a node listening at (addr, port).
func infoFor(n *dht.Node, addr iputil.Addr, port uint16) krpc.NodeInfo {
	return krpc.NodeInfo{ID: n.ID(), Addr: addr, Port: port}
}

func (s *swarm) newCrawler(t *testing.T, cfg Config) *Crawler {
	t.Helper()
	sock, err := s.net.Listen(netsim.Endpoint{Addr: iputil.MustParseAddr("172.16.0.1"), Port: 9999})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Bootstrap) == 0 {
		cfg.Bootstrap = []netsim.Endpoint{s.eps[0]}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	return New(sock, dht.SimClock(s.clock), cfg)
}

func fastConfig() Config {
	return Config{
		Cooldown:      20 * time.Minute,
		PingInterval:  time.Hour,
		PingWindow:    30 * time.Second,
		SweepInterval: time.Hour,
		Tick:          time.Second,
		BatchPerTick:  512,
		QueryTimeout:  5 * time.Second,
	}
}

func TestCrawlerDiscoversSwarm(t *testing.T) {
	s := newSwarm(t, 30, 0)
	c := s.newCrawler(t, fastConfig())
	c.Start()
	s.clock.RunFor(3 * time.Hour)
	c.Stop()
	st := c.Stats()
	if st.UniqueIPs < 25 {
		t.Errorf("discovered %d of 30 IPs", st.UniqueIPs)
	}
	if st.GetNodesSent == 0 || st.GetNodesReplies == 0 {
		t.Errorf("no crawling traffic: %+v", st)
	}
}

func TestCrawlerDetectsNAT(t *testing.T) {
	s := newSwarm(t, 20, 0)
	natAddr := s.addNATUsers(t, "100.64.0.1", 3, netsim.FullCone)
	c := s.newCrawler(t, fastConfig())
	c.Start()
	s.clock.RunFor(8 * time.Hour)
	c.Stop()

	obs := c.NATed()
	if len(obs) != 1 {
		t.Fatalf("NATed = %+v, want exactly the one NAT", obs)
	}
	if obs[0].Addr != natAddr {
		t.Errorf("detected %v, want %v", obs[0].Addr, natAddr)
	}
	if obs[0].Users < 2 || obs[0].Users > 3 {
		t.Errorf("user lower bound = %d, want 2..3", obs[0].Users)
	}
}

func TestCrawlerNoFalsePositiveOnPortChange(t *testing.T) {
	// A single user who changes port must NOT be flagged: after the
	// change, only the new port answers pings (the old one is stale), and
	// one responding port never satisfies the two-reply rule.
	s := newSwarm(t, 12, 0)
	addr := iputil.MustParseAddr("10.5.0.1")
	n := s.addPublicNode(t, addr, 7000, 500)
	// Make the swarm aware of the original port.
	s.nodes[0].AddNode(infoFor(n, addr, 7000))

	c := s.newCrawler(t, fastConfig())
	c.Start()
	s.clock.RunFor(2 * time.Hour)

	// The user restarts their client on a new port with a new node ID.
	n.Close()
	sock, err := s.net.Listen(netsim.Endpoint{Addr: addr, Port: 7001})
	if err != nil {
		t.Fatal(err)
	}
	n2 := dht.NewNode(sock, dht.SimClock(s.clock), dht.Config{
		PrivateIP: addr, IDSeed: 501, Seed: 501, KeepaliveInterval: 5 * time.Minute,
	})
	s.nodes[0].AddNode(infoFor(n2, addr, 7001))

	s.clock.RunFor(6 * time.Hour)
	c.Stop()
	for _, o := range c.NATed() {
		if o.Addr == addr {
			t.Errorf("port-changing single user flagged as NAT: %+v", o)
		}
	}
	// The crawler must still have noticed both ports (the confound).
	if rec := c.ips[addr]; rec == nil || len(rec.ports) < 2 {
		t.Error("crawler should have seen two ports for the restarting user")
	}
}

func TestCrawlerScopeRestriction(t *testing.T) {
	s := newSwarm(t, 20, 0)
	inScope := iputil.MustParsePrefix("10.1.0.0/24")
	cfg := fastConfig()
	cfg.Scope = func(a iputil.Addr) bool { return inScope.Contains(a) }
	c := s.newCrawler(t, cfg)
	c.Start()
	s.clock.RunFor(3 * time.Hour)
	c.Stop()
	for _, a := range c.ObservedIPs().Sorted() {
		if !inScope.Contains(a) {
			t.Errorf("out-of-scope address observed: %v", a)
		}
	}
	if c.Stats().ScopeSuppressed == 0 {
		t.Error("expected suppressed out-of-scope probes")
	}
}

func TestCrawlerCooldown(t *testing.T) {
	s := newSwarm(t, 3, 0)
	cfg := fastConfig()
	cfg.SweepInterval = 10 * time.Minute // sweep more often than cooldown
	c := s.newCrawler(t, cfg)
	c.Start()
	s.clock.RunFor(time.Hour)
	c.Stop()
	st := c.Stats()
	// With a 20-minute cooldown, each of the 3 IPs can be contacted at
	// most 4 times in one hour (t=0ish, 20, 40, 60) via get_nodes.
	maxContacts := int64(3 * 4)
	if st.GetNodesSent > maxContacts+3 {
		t.Errorf("GetNodesSent = %d, cooldown not enforced (max %d)", st.GetNodesSent, maxContacts)
	}
}

func TestCrawlerSurvivesLoss(t *testing.T) {
	s := newSwarm(t, 25, 0.3)
	natAddr := s.addNATUsers(t, "100.64.0.9", 2, netsim.FullCone)
	c := s.newCrawler(t, fastConfig())
	c.Start()
	s.clock.RunFor(24 * time.Hour)
	c.Stop()
	st := c.Stats()
	if st.ResponseRate <= 0.4 || st.ResponseRate >= 0.95 {
		t.Errorf("response rate = %.2f, want lossy-but-working", st.ResponseRate)
	}
	found := false
	for _, o := range c.NATed() {
		if o.Addr == natAddr {
			found = true
		}
	}
	if !found {
		t.Error("NAT missed under 30% loss with hourly rounds")
	}
}

func TestCrawlerAddressRestrictedNATUndercounts(t *testing.T) {
	// Users behind an address-restricted NAT never answer the crawler's
	// unsolicited pings, so the NAT must not be confirmed — the paper's
	// systematic undercounting.
	s := newSwarm(t, 15, 0)
	s.addNATUsers(t, "100.64.0.5", 3, netsim.AddressRestricted)
	c := s.newCrawler(t, fastConfig())
	c.Start()
	s.clock.RunFor(8 * time.Hour)
	c.Stop()
	if len(c.NATed()) != 0 {
		t.Errorf("restricted NAT confirmed: %+v", c.NATed())
	}
}

func TestCrawlerStopIsFinal(t *testing.T) {
	s := newSwarm(t, 5, 0)
	c := s.newCrawler(t, fastConfig())
	c.Start()
	s.clock.RunFor(30 * time.Minute)
	c.Stop()
	sent := c.Stats().MessagesSent
	s.clock.RunFor(4 * time.Hour)
	if got := c.Stats().MessagesSent; got != sent {
		t.Errorf("crawler kept sending after Stop: %d -> %d", sent, got)
	}
	c.Start() // must not restart
	s.clock.RunFor(time.Hour)
	if got := c.Stats().MessagesSent; got != sent {
		t.Error("Start after Stop restarted the crawler")
	}
}

func TestCrawlerDeterminism(t *testing.T) {
	run := func() (Stats, int) {
		s := newSwarm(t, 20, 0.1)
		s.addNATUsers(t, "100.64.0.1", 2, netsim.FullCone)
		c := s.newCrawler(t, fastConfig())
		c.Start()
		s.clock.RunFor(6 * time.Hour)
		c.Stop()
		return c.Stats(), len(c.NATed())
	}
	s1, n1 := run()
	s2, n2 := run()
	if s1 != s2 || n1 != n2 {
		t.Errorf("non-deterministic crawl:\n%+v (%d)\n%+v (%d)", s1, n1, s2, n2)
	}
}

func TestMergeObservations(t *testing.T) {
	a := iputil.MustParseAddr("100.64.0.1")
	b := iputil.MustParseAddr("100.64.0.2")
	t1 := netsim.Epoch.Add(time.Hour)
	t2 := netsim.Epoch.Add(2 * time.Hour)
	g1 := []NATObservation{{Addr: a, Users: 2, PortsSeen: 2, FirstConfirmed: t2}}
	g2 := []NATObservation{
		{Addr: a, Users: 5, PortsSeen: 3, FirstConfirmed: t1},
		{Addr: b, Users: 2, PortsSeen: 2, FirstConfirmed: t2},
	}
	merged := MergeObservations(g1, g2)
	if len(merged) != 2 {
		t.Fatalf("merged = %+v", merged)
	}
	if merged[0].Addr != a || merged[0].Users != 5 || merged[0].PortsSeen != 3 {
		t.Errorf("merged[0] = %+v (want max bounds)", merged[0])
	}
	if !merged[0].FirstConfirmed.Equal(t1) {
		t.Errorf("FirstConfirmed = %v, want earliest", merged[0].FirstConfirmed)
	}
	if merged[1].Addr != b {
		t.Errorf("merged[1] = %+v", merged[1])
	}
	if got := MergeObservations(); len(got) != 0 {
		t.Error("empty merge should be empty")
	}
}

func TestMergeStats(t *testing.T) {
	s1 := Stats{GetNodesSent: 10, GetNodesReplies: 5, PingsSent: 4, PingReplies: 2, SimultaneousMax: 3}
	s2 := Stats{GetNodesSent: 20, GetNodesReplies: 15, PingsSent: 6, PingReplies: 4, SimultaneousMax: 7}
	m := MergeStats(s1, s2)
	if m.MessagesSent != 40 || m.MessagesReceived != 26 {
		t.Errorf("merged traffic = %d/%d", m.MessagesSent, m.MessagesReceived)
	}
	if m.ResponseRate != 26.0/40 {
		t.Errorf("rate = %v", m.ResponseRate)
	}
	if m.SimultaneousMax != 7 {
		t.Errorf("SimultaneousMax = %d", m.SimultaneousMax)
	}
}

func TestTwoVantagesCoverAtLeastAsMuch(t *testing.T) {
	run := func(vantages int) (int, int) {
		s := newSwarm(t, 25, 0.3)
		s.addNATUsers(t, "100.64.0.1", 2, netsim.FullCone)
		var crawlers []*Crawler
		for v := 0; v < vantages; v++ {
			sock, err := s.net.Listen(netsim.Endpoint{Addr: iputil.AddrFrom4(172, 16, byte(v), 1), Port: 9999})
			if err != nil {
				t.Fatal(err)
			}
			cfg := fastConfig()
			cfg.Bootstrap = []netsim.Endpoint{s.eps[0]}
			cfg.Seed = int64(100 + v)
			crawlers = append(crawlers, New(sock, dht.SimClock(s.clock), cfg))
		}
		for _, c := range crawlers {
			c.Start()
		}
		s.clock.RunFor(6 * time.Hour)
		observed := iputil.NewSet()
		var obs [][]NATObservation
		for _, c := range crawlers {
			c.Stop()
			observed.AddSet(c.ObservedIPs())
			obs = append(obs, c.NATed())
		}
		return observed.Len(), len(MergeObservations(obs...))
	}
	ips1, _ := run(1)
	ips2, nat2 := run(2)
	if ips2 < ips1 {
		t.Errorf("two vantages observed %d IPs < one vantage's %d", ips2, ips1)
	}
	_ = nat2
}
