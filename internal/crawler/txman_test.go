package crawler

import (
	"fmt"
	"testing"

	"github.com/reuseblock/reuseblock/internal/netsim"
)

func txTo(id string, ep netsim.Endpoint, stopped *int) *Tx {
	return &Tx{ID: id, To: ep, Stop: func() bool { *stopped++; return true }}
}

func TestTxManagerRegisterResolve(t *testing.T) {
	m := NewTxManager(4)
	ep := netsim.Endpoint{Addr: 0x0a000001, Port: 6881}
	var stopped int
	m.Register(txTo("aa", ep, &stopped))
	m.Register(txTo("ab", ep, &stopped))

	if got := m.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	if got := m.Outstanding(ep); got != 2 {
		t.Fatalf("Outstanding = %d, want 2 (two concurrent queries to one node)", got)
	}
	if tx, ok := m.Get("aa"); !ok || tx.ID != "aa" {
		t.Fatalf("Get(aa) = %v, %v", tx, ok)
	}

	tx, ok := m.Resolve("aa")
	if !ok || tx.To != ep {
		t.Fatalf("Resolve(aa) = %v, %v", tx, ok)
	}
	if stopped != 1 {
		t.Fatalf("Resolve did not cancel the deadline: stopped = %d", stopped)
	}
	if m.InFlight() != 1 || m.Outstanding(ep) != 1 {
		t.Fatalf("after resolve: inflight %d outstanding %d, want 1/1", m.InFlight(), m.Outstanding(ep))
	}
	if _, ok := m.Resolve("aa"); ok {
		t.Fatal("double Resolve succeeded")
	}
	if _, ok := m.Resolve("zz"); ok {
		t.Fatal("Resolve of unknown tx succeeded")
	}
}

func TestTxManagerFailFeedsLateWindow(t *testing.T) {
	m := NewTxManager(4)
	ep := netsim.Endpoint{Addr: 0x0a000002, Port: 6881}
	var stopped int
	m.Register(txTo("aa", ep, &stopped))

	tx, ok := m.Fail("aa")
	if !ok || tx.To != ep {
		t.Fatalf("Fail(aa) = %v, %v", tx, ok)
	}
	if stopped != 0 {
		t.Fatal("Fail must not Stop: the deadline timer already fired")
	}
	if m.InFlight() != 0 || m.Outstanding(ep) != 0 {
		t.Fatalf("failed tx still accounted: inflight %d outstanding %d", m.InFlight(), m.Outstanding(ep))
	}

	to, ok := m.ResolveLate("aa")
	if !ok || to != ep {
		t.Fatalf("ResolveLate(aa) = %v, %v", to, ok)
	}
	if _, ok := m.ResolveLate("aa"); ok {
		t.Fatal("a transaction resolved late twice")
	}
	if _, ok := m.Fail("aa"); ok {
		t.Fatal("Fail of already-failed tx succeeded")
	}
}

// TestTxManagerLateWindowFIFO: the late window is bounded and forgets the
// oldest timed-out transaction first.
func TestTxManagerLateWindowFIFO(t *testing.T) {
	m := NewTxManager(3)
	ep := netsim.Endpoint{Addr: 0x0a000003, Port: 6881}
	var stopped int
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("t%d", i)
		m.Register(txTo(id, ep, &stopped))
		m.Fail(id)
	}
	// Window holds 3; t0 and t1 were evicted.
	for _, id := range []string{"t0", "t1"} {
		if _, ok := m.ResolveLate(id); ok {
			t.Fatalf("evicted tx %s still in late window", id)
		}
	}
	for _, id := range []string{"t2", "t3", "t4"} {
		if to, ok := m.ResolveLate(id); !ok || to != ep {
			t.Fatalf("ResolveLate(%s) = %v, %v", id, to, ok)
		}
	}
}

func TestTxManagerDefaultLateWindow(t *testing.T) {
	m := NewTxManager(0)
	if m.lateMax != lateWindowMax {
		t.Fatalf("lateMax = %d, want default %d", m.lateMax, lateWindowMax)
	}
}

func TestTxManagerCancelAll(t *testing.T) {
	m := NewTxManager(4)
	ep1 := netsim.Endpoint{Addr: 0x0a000004, Port: 6881}
	ep2 := netsim.Endpoint{Addr: 0x0a000005, Port: 6881}
	var stopped int
	m.Register(txTo("aa", ep1, &stopped))
	m.Register(txTo("ab", ep2, &stopped))
	m.Register(txTo("ac", ep2, &stopped))
	m.Fail("ac") // seed the late window before cancelling

	m.CancelAll()
	if stopped != 2 {
		t.Fatalf("CancelAll stopped %d deadlines, want 2", stopped)
	}
	if m.InFlight() != 0 || m.Outstanding(ep1) != 0 || m.Outstanding(ep2) != 0 {
		t.Fatalf("CancelAll left accounting: inflight %d", m.InFlight())
	}
	// The late window survives shutdown so stragglers still count.
	if to, ok := m.ResolveLate("ac"); !ok || to != ep2 {
		t.Fatalf("late window lost across CancelAll: %v, %v", to, ok)
	}
	// The manager stays usable after CancelAll.
	m.Register(txTo("ad", ep1, &stopped))
	if m.InFlight() != 1 {
		t.Fatalf("manager unusable after CancelAll: inflight %d", m.InFlight())
	}
}
