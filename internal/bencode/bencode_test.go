package bencode

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodePrimitives(t *testing.T) {
	cases := []struct {
		in   Value
		want string
	}{
		{int64(42), "i42e"},
		{int64(-7), "i-7e"},
		{int64(0), "i0e"},
		{int(5), "i5e"},
		{"spam", "4:spam"},
		{"", "0:"},
		{[]byte{0x00, 0xff}, "2:\x00\xff"},
		{[]Value{int64(1), "a"}, "li1e1:ae"},
		{[]Value(nil), "le"},
		{map[string]Value{"b": int64(2), "a": int64(1)}, "d1:ai1e1:bi2ee"},
	}
	for _, c := range cases {
		got, err := Encode(c.in)
		if err != nil {
			t.Errorf("Encode(%v): %v", c.in, err)
			continue
		}
		if string(got) != c.want {
			t.Errorf("Encode(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestEncodeUnsupported(t *testing.T) {
	if _, err := Encode(3.14); err == nil {
		t.Error("floats must not encode")
	}
}

func TestDecodePrimitives(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"i42e", int64(42)},
		{"i-1e", int64(-1)},
		{"4:spam", "spam"},
		{"0:", ""},
		{"le", []Value(nil)},
		{"li1e1:ae", []Value{int64(1), "a"}},
		{"de", map[string]Value{}},
		{"d1:ai1e1:bi2ee", map[string]Value{"a": int64(1), "b": int64(2)}},
	}
	for _, c := range cases {
		got, err := Decode([]byte(c.in))
		if err != nil {
			t.Errorf("Decode(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Decode(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []string{
		"", "i", "ie", "i-e", "i01e", "i-0e", "iabce",
		"5:spam", "-1:x", "01:x", "4spam",
		"l", "li1e", "d", "d1:a", "d1:ai1e", "dli1eei1ee",
		"i1ei2e", "x",
		"d1:bi1e1:ai2ee", // unsorted keys
		"d1:ai1e1:ai2ee", // duplicate keys
	}
	for _, in := range bad {
		if _, err := Decode([]byte(in)); err == nil {
			t.Errorf("Decode(%q) succeeded, want error", in)
		}
	}
}

func TestDecodeDepthLimit(t *testing.T) {
	deep := bytes.Repeat([]byte("l"), 100)
	deep = append(deep, bytes.Repeat([]byte("e"), 100)...)
	if _, err := Decode(deep); !errors.Is(err, ErrTooDeep) {
		t.Errorf("deep nesting: %v, want ErrTooDeep", err)
	}
}

func TestDecodePrefix(t *testing.T) {
	v, n, err := DecodePrefix([]byte("i7etrailing"))
	if err != nil || v != int64(7) || n != 3 {
		t.Errorf("DecodePrefix = %v, %d, %v", v, n, err)
	}
}

// genValue builds a random Value of bounded depth for round-trip testing.
func genValue(rng *rand.Rand, depth int) Value {
	switch k := rng.Intn(4); {
	case k == 0 || depth >= 3:
		return int64(rng.Int63n(1<<40) - 1<<39)
	case k == 1:
		b := make([]byte, rng.Intn(20))
		rng.Read(b)
		return string(b)
	case k == 2:
		n := rng.Intn(4)
		var list []Value
		for i := 0; i < n; i++ {
			list = append(list, genValue(rng, depth+1))
		}
		return list
	default:
		n := rng.Intn(4)
		dict := make(map[string]Value)
		for i := 0; i < n; i++ {
			key := make([]byte, 1+rng.Intn(8))
			rng.Read(key)
			dict[string(key)] = genValue(rng, depth+1)
		}
		return dict
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		v := genValue(rng, 0)
		enc, err := Encode(v)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%q): %v", enc, err)
		}
		if !equalValue(v, back) {
			t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", v, back)
		}
		// Canonical: re-encoding the decoded value must be identical.
		enc2, err := Encode(back)
		if err != nil || !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding violated: %q vs %q (%v)", enc, enc2, err)
		}
	}
}

// equalValue compares Values treating nil and empty lists as equal.
func equalValue(a, b Value) bool {
	switch x := a.(type) {
	case []Value:
		y, ok := b.([]Value)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !equalValue(x[i], y[i]) {
				return false
			}
		}
		return true
	case map[string]Value:
		y, ok := b.(map[string]Value)
		if !ok || len(x) != len(y) {
			return false
		}
		for k, v := range x {
			if !equalValue(v, y[k]) {
				return false
			}
		}
		return true
	default:
		return a == b
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Decode(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

type krpcLike struct {
	TxID     string         `bencode:"t"`
	Type     string         `bencode:"y"`
	Query    string         `bencode:"q,omitempty"`
	Args     map[string]int `bencode:"a,omitempty"`
	Version  string         `bencode:"v,omitempty"`
	Ignored  string         `bencode:"-"`
	internal int            //nolint:unused // exercises unexported skipping
}

func TestMarshalStruct(t *testing.T) {
	m := krpcLike{TxID: "aa", Type: "q", Query: "ping", Args: map[string]int{"id": 7}, Ignored: "x"}
	enc, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	want := "d1:ad2:idi7ee1:q4:ping1:t2:aa1:y1:qe"
	if string(enc) != want {
		t.Errorf("Marshal = %q, want %q", enc, want)
	}
}

func TestMarshalOmitEmpty(t *testing.T) {
	enc, err := Marshal(krpcLike{TxID: "x", Type: "r"})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(enc, []byte("1:q")) || bytes.Contains(enc, []byte("1:a")) {
		t.Errorf("omitempty field present: %q", enc)
	}
}

func TestUnmarshalStruct(t *testing.T) {
	var m krpcLike
	in := "d1:ad2:idi9ee1:q4:ping1:t2:zz7:unknown3:abc1:y1:qe"
	if err := Unmarshal([]byte(in), &m); err != nil {
		t.Fatal(err)
	}
	if m.TxID != "zz" || m.Query != "ping" || m.Args["id"] != 9 {
		t.Errorf("Unmarshal = %+v", m)
	}
}

func TestUnmarshalTypeMismatch(t *testing.T) {
	var m krpcLike
	if err := Unmarshal([]byte("d1:ti5e1:y1:qe"), &m); err == nil {
		t.Error("int into string field should error")
	}
	var n int
	if err := Unmarshal([]byte("3:abc"), &n); err == nil {
		t.Error("string into int should error")
	}
	if err := Unmarshal([]byte("i1e"), nil); err == nil {
		t.Error("nil target should error")
	}
	var notPtr krpcLike
	if err := Unmarshal([]byte("de"), reflect.ValueOf(notPtr).Interface()); err == nil {
		t.Error("non-pointer target should error")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	type inner struct {
		Name string `bencode:"n"`
		Vals []int  `bencode:"v"`
	}
	type outer struct {
		ID    []byte  `bencode:"id"`
		Items []inner `bencode:"items"`
		Count uint16  `bencode:"count"`
	}
	in := outer{ID: []byte{1, 2, 3}, Items: []inner{{"a", []int{1}}, {"b", nil}}, Count: 65535}
	enc, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out outer
	if err := Unmarshal(enc, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.ID, in.ID) || out.Count != 65535 || len(out.Items) != 2 || out.Items[0].Name != "a" {
		t.Errorf("round trip = %+v", out)
	}
}

func TestUnmarshalNegativeIntoUint(t *testing.T) {
	var x struct {
		N uint32 `bencode:"n"`
	}
	if err := Unmarshal([]byte("d1:ni-5ee"), &x); err == nil {
		t.Error("negative into uint should error")
	}
}
