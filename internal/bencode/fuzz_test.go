package bencode

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the decoder with arbitrary bytes: it must never panic,
// and anything it accepts must re-encode canonically and decode again to
// the same bytes.
func FuzzDecode(f *testing.F) {
	seeds := []string{
		"i42e", "4:spam", "le", "de",
		"d1:ad2:idi7ee1:q4:ping1:t2:aa1:y1:qe",
		"li1eli2eli3eeee",
		"d1:a1:b1:c1:de",
		"i-1e", "0:", "i01e", "1:",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		if err != nil {
			return
		}
		enc, err := Encode(v)
		if err != nil {
			t.Fatalf("accepted value failed to encode: %v", err)
		}
		v2, err := Decode(enc)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v", err)
		}
		enc2, err := Encode(v2)
		if err != nil || !bytes.Equal(enc, enc2) {
			t.Fatalf("re-encode not canonical: %q vs %q (%v)", enc, enc2, err)
		}
	})
}
