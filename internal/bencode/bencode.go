// Package bencode implements the BitTorrent bencoding format (BEP 3):
// integers (i...e), byte strings (<len>:<bytes>), lists (l...e) and
// dictionaries (d...e with lexicographically sorted keys).
//
// The package offers both a dynamic API (Encode/Decode on Value) and a
// reflection-based Marshal/Unmarshal for struct types, which the KRPC layer
// uses for DHT messages.
package bencode

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strconv"
)

// Value is the dynamic representation of a bencoded term:
//
//	int64            — integer
//	string           — byte string
//	[]Value          — list
//	map[string]Value — dictionary
type Value interface{}

// Errors returned by the decoder.
var (
	ErrSyntax     = errors.New("bencode: syntax error")
	ErrTrailing   = errors.New("bencode: trailing data after value")
	ErrUnsorted   = errors.New("bencode: dictionary keys not sorted")
	ErrTooDeep    = errors.New("bencode: nesting too deep")
	maxNestDepth  = 64
	maxStringSize = 16 << 20
)

// Encode renders v in canonical bencoding. Supported dynamic types are the
// Value shapes plus int/uint variants and []byte.
func Encode(v Value) ([]byte, error) {
	var buf bytes.Buffer
	if err := encodeValue(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func encodeValue(buf *bytes.Buffer, v Value) error {
	switch x := v.(type) {
	case int64:
		encodeInt(buf, x)
	case int:
		encodeInt(buf, int64(x))
	case int32:
		encodeInt(buf, int64(x))
	case uint32:
		encodeInt(buf, int64(x))
	case uint16:
		encodeInt(buf, int64(x))
	case string:
		encodeString(buf, x)
	case []byte:
		encodeString(buf, string(x))
	case []Value:
		buf.WriteByte('l')
		for _, e := range x {
			if err := encodeValue(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte('e')
	case map[string]Value:
		buf.WriteByte('d')
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			encodeString(buf, k)
			if err := encodeValue(buf, x[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('e')
	default:
		return fmt.Errorf("bencode: cannot encode %T", v)
	}
	return nil
}

func encodeInt(buf *bytes.Buffer, n int64) {
	buf.WriteByte('i')
	buf.WriteString(strconv.FormatInt(n, 10))
	buf.WriteByte('e')
}

func encodeString(buf *bytes.Buffer, s string) {
	buf.WriteString(strconv.Itoa(len(s)))
	buf.WriteByte(':')
	buf.WriteString(s)
}

// Decode parses a single bencoded value and requires the input to be fully
// consumed.
func Decode(data []byte) (Value, error) {
	d := decoder{data: data}
	v, err := d.value(0)
	if err != nil {
		return nil, err
	}
	if d.pos != len(data) {
		return nil, ErrTrailing
	}
	return v, nil
}

// DecodePrefix parses a single bencoded value from the front of data and
// returns it along with the number of bytes consumed.
func DecodePrefix(data []byte) (Value, int, error) {
	d := decoder{data: data}
	v, err := d.value(0)
	if err != nil {
		return nil, 0, err
	}
	return v, d.pos, nil
}

type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) value(depth int) (Value, error) {
	if depth > maxNestDepth {
		return nil, ErrTooDeep
	}
	if d.pos >= len(d.data) {
		return nil, fmt.Errorf("%w: unexpected end of input", ErrSyntax)
	}
	switch c := d.data[d.pos]; {
	case c == 'i':
		return d.integer()
	case c >= '0' && c <= '9':
		return d.str()
	case c == 'l':
		d.pos++
		var list []Value
		for {
			if d.pos >= len(d.data) {
				return nil, fmt.Errorf("%w: unterminated list", ErrSyntax)
			}
			if d.data[d.pos] == 'e' {
				d.pos++
				return list, nil
			}
			v, err := d.value(depth + 1)
			if err != nil {
				return nil, err
			}
			list = append(list, v)
		}
	case c == 'd':
		d.pos++
		dict := make(map[string]Value)
		prevKey := ""
		first := true
		for {
			if d.pos >= len(d.data) {
				return nil, fmt.Errorf("%w: unterminated dict", ErrSyntax)
			}
			if d.data[d.pos] == 'e' {
				d.pos++
				return dict, nil
			}
			kv, err := d.str()
			if err != nil {
				return nil, fmt.Errorf("%w: dict key: %v", ErrSyntax, err)
			}
			key := kv.(string)
			if !first && key <= prevKey {
				return nil, ErrUnsorted
			}
			first, prevKey = false, key
			v, err := d.value(depth + 1)
			if err != nil {
				return nil, err
			}
			dict[key] = v
		}
	default:
		return nil, fmt.Errorf("%w: unexpected byte %q at %d", ErrSyntax, c, d.pos)
	}
}

func (d *decoder) integer() (Value, error) {
	d.pos++ // 'i'
	end := bytes.IndexByte(d.data[d.pos:], 'e')
	if end < 0 {
		return nil, fmt.Errorf("%w: unterminated integer", ErrSyntax)
	}
	tok := string(d.data[d.pos : d.pos+end])
	if tok == "" || tok == "-" {
		return nil, fmt.Errorf("%w: empty integer", ErrSyntax)
	}
	if tok != "0" && (tok[0] == '0' || (tok[0] == '-' && tok[1] == '0')) {
		return nil, fmt.Errorf("%w: leading zero in integer %q", ErrSyntax, tok)
	}
	n, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: bad integer %q", ErrSyntax, tok)
	}
	d.pos += end + 1
	return n, nil
}

func (d *decoder) str() (Value, error) {
	colon := bytes.IndexByte(d.data[d.pos:], ':')
	if colon < 0 {
		return nil, fmt.Errorf("%w: missing ':' in string length", ErrSyntax)
	}
	tok := string(d.data[d.pos : d.pos+colon])
	if tok == "" || (len(tok) > 1 && tok[0] == '0') {
		return nil, fmt.Errorf("%w: bad string length %q", ErrSyntax, tok)
	}
	n, err := strconv.Atoi(tok)
	if err != nil || n < 0 || n > maxStringSize {
		return nil, fmt.Errorf("%w: bad string length %q", ErrSyntax, tok)
	}
	start := d.pos + colon + 1
	if start+n > len(d.data) {
		return nil, fmt.Errorf("%w: string extends past input", ErrSyntax)
	}
	d.pos = start + n
	return string(d.data[start : start+n]), nil
}

// Marshal encodes a struct (or any supported Go value) to bencoding.
// Struct fields use the `bencode:"name"` tag; fields tagged "-" and
// zero-valued fields tagged ",omitempty" are skipped.
func Marshal(v interface{}) ([]byte, error) {
	dyn, err := toValue(reflect.ValueOf(v))
	if err != nil {
		return nil, err
	}
	return Encode(dyn)
}

func toValue(rv reflect.Value) (Value, error) {
	switch rv.Kind() {
	case reflect.Ptr, reflect.Interface:
		if rv.IsNil() {
			return nil, errors.New("bencode: cannot marshal nil")
		}
		return toValue(rv.Elem())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return rv.Int(), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return int64(rv.Uint()), nil
	case reflect.String:
		return rv.String(), nil
	case reflect.Slice:
		if rv.Type().Elem().Kind() == reflect.Uint8 {
			return string(rv.Bytes()), nil
		}
		list := make([]Value, rv.Len())
		for i := 0; i < rv.Len(); i++ {
			ev, err := toValue(rv.Index(i))
			if err != nil {
				return nil, err
			}
			list[i] = ev
		}
		return list, nil
	case reflect.Map:
		if rv.Type().Key().Kind() != reflect.String {
			return nil, errors.New("bencode: map keys must be strings")
		}
		dict := make(map[string]Value, rv.Len())
		iter := rv.MapRange()
		for iter.Next() {
			ev, err := toValue(iter.Value())
			if err != nil {
				return nil, err
			}
			dict[iter.Key().String()] = ev
		}
		return dict, nil
	case reflect.Struct:
		dict := make(map[string]Value)
		t := rv.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			name, omitEmpty := fieldName(f)
			if name == "-" {
				continue
			}
			fv := rv.Field(i)
			if omitEmpty && fv.IsZero() {
				continue
			}
			ev, err := toValue(fv)
			if err != nil {
				return nil, err
			}
			dict[name] = ev
		}
		return dict, nil
	default:
		return nil, fmt.Errorf("bencode: cannot marshal %s", rv.Kind())
	}
}

func fieldName(f reflect.StructField) (name string, omitEmpty bool) {
	tag := f.Tag.Get("bencode")
	if tag == "" {
		return f.Name, false
	}
	name = tag
	if comma := bytes.IndexByte([]byte(tag), ','); comma >= 0 {
		name = tag[:comma]
		omitEmpty = tag[comma+1:] == "omitempty"
	}
	if name == "" {
		name = f.Name
	}
	return name, omitEmpty
}

// Unmarshal decodes data into the struct (or map/slice/scalar) pointed to by
// dst. Unknown dictionary keys are ignored; missing keys leave fields at
// their zero value.
func Unmarshal(data []byte, dst interface{}) error {
	v, err := Decode(data)
	if err != nil {
		return err
	}
	rv := reflect.ValueOf(dst)
	if rv.Kind() != reflect.Ptr || rv.IsNil() {
		return errors.New("bencode: Unmarshal target must be a non-nil pointer")
	}
	return fromValue(v, rv.Elem())
}

func fromValue(v Value, dst reflect.Value) error {
	switch dst.Kind() {
	case reflect.Interface:
		dst.Set(reflect.ValueOf(v))
		return nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		n, ok := v.(int64)
		if !ok {
			return fmt.Errorf("bencode: cannot unmarshal %T into %s", v, dst.Kind())
		}
		dst.SetInt(n)
		return nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		n, ok := v.(int64)
		if !ok || n < 0 {
			return fmt.Errorf("bencode: cannot unmarshal %T into %s", v, dst.Kind())
		}
		dst.SetUint(uint64(n))
		return nil
	case reflect.String:
		s, ok := v.(string)
		if !ok {
			return fmt.Errorf("bencode: cannot unmarshal %T into string", v)
		}
		dst.SetString(s)
		return nil
	case reflect.Slice:
		if dst.Type().Elem().Kind() == reflect.Uint8 {
			s, ok := v.(string)
			if !ok {
				return fmt.Errorf("bencode: cannot unmarshal %T into []byte", v)
			}
			dst.SetBytes([]byte(s))
			return nil
		}
		list, ok := v.([]Value)
		if !ok {
			return fmt.Errorf("bencode: cannot unmarshal %T into slice", v)
		}
		out := reflect.MakeSlice(dst.Type(), len(list), len(list))
		for i, e := range list {
			if err := fromValue(e, out.Index(i)); err != nil {
				return err
			}
		}
		dst.Set(out)
		return nil
	case reflect.Map:
		dict, ok := v.(map[string]Value)
		if !ok {
			return fmt.Errorf("bencode: cannot unmarshal %T into map", v)
		}
		if dst.Type().Key().Kind() != reflect.String {
			return errors.New("bencode: map keys must be strings")
		}
		out := reflect.MakeMapWithSize(dst.Type(), len(dict))
		for k, e := range dict {
			ev := reflect.New(dst.Type().Elem()).Elem()
			if err := fromValue(e, ev); err != nil {
				return err
			}
			out.SetMapIndex(reflect.ValueOf(k), ev)
		}
		dst.Set(out)
		return nil
	case reflect.Struct:
		dict, ok := v.(map[string]Value)
		if !ok {
			return fmt.Errorf("bencode: cannot unmarshal %T into struct", v)
		}
		t := dst.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			name, _ := fieldName(f)
			if name == "-" {
				continue
			}
			e, present := dict[name]
			if !present {
				continue
			}
			if err := fromValue(e, dst.Field(i)); err != nil {
				return fmt.Errorf("field %s: %w", f.Name, err)
			}
		}
		return nil
	case reflect.Ptr:
		if dst.IsNil() {
			dst.Set(reflect.New(dst.Type().Elem()))
		}
		return fromValue(v, dst.Elem())
	default:
		return fmt.Errorf("bencode: cannot unmarshal into %s", dst.Kind())
	}
}
