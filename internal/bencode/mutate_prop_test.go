// Mutation-robustness tests: the committed fuzz corpus under testdata/fuzz
// was discovered by running testkit.MutateBytes over valid documents and
// keeping one input per distinct decoder error site. This test keeps that
// discovery live — every mutant must decode without panicking, and accepted
// mutants must re-encode canonically. It lives in an external test package
// because testkit (via core, crawler and krpc) imports bencode.
package bencode_test

import (
	"bytes"
	"testing"

	"github.com/reuseblock/reuseblock/internal/bencode"
	"github.com/reuseblock/reuseblock/internal/testkit"
)

func TestDecodeRobustUnderMutation(t *testing.T) {
	seeds := [][]byte{
		[]byte("d1:ad2:idi7ee1:q4:ping1:t2:aa1:y1:qe"),
		[]byte("li1eli2eli3eeee"),
		[]byte("d1:a1:b1:c1:de"),
		[]byte("i-42e"),
		[]byte("26:abcdefghijklmnopqrstuvwxyz"),
	}
	for si, seed := range seeds {
		for mi, m := range testkit.MutateBytes(int64(100+si), seed, 500) {
			v, err := bencode.Decode(m)
			if err != nil {
				continue
			}
			enc, err := bencode.Encode(v)
			if err != nil {
				t.Fatalf("seed %d mutant %d (%q): accepted value failed to encode: %v", si, mi, m, err)
			}
			v2, err := bencode.Decode(enc)
			if err != nil {
				t.Fatalf("seed %d mutant %d (%q): canonical encoding failed to decode: %v", si, mi, m, err)
			}
			enc2, err := bencode.Encode(v2)
			if err != nil || !bytes.Equal(enc, enc2) {
				t.Fatalf("seed %d mutant %d (%q): re-encode not canonical: %q vs %q (%v)",
					si, mi, m, enc, enc2, err)
			}
		}
	}
}
