package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/faults"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/netsim"
)

// TestStreamArtifactsMatchesBatch pins the streaming contract at the package
// level: concatenated chunks are byte-identical to the batch writers, with a
// window small enough to force many flushes.
func TestStreamArtifactsMatchesBatch(t *testing.T) {
	s, _ := smallStudy(t, 1)

	var natStream, obsStream bytes.Buffer
	chunks := 0
	err := s.StreamArtifacts(ArtifactSink{
		NATedHeader: "confirmed NATed addresses",
		NATedList: func(chunk []byte) error {
			chunks++
			natStream.Write(chunk)
			return nil
		},
		ObservedIPs: func(chunk []byte) error {
			chunks++
			obsStream.Write(chunk)
			return nil
		},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if chunks < 2 {
		t.Fatalf("window 3 produced only %d chunks", chunks)
	}

	users := make(map[iputil.Addr]int, len(s.NATed))
	for _, o := range s.NATed {
		users[o.Addr] = o.Users
	}
	var natBatch bytes.Buffer
	if err := blocklist.WriteNATedList(&natBatch, users, "confirmed NATed addresses"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(natStream.Bytes(), natBatch.Bytes()) {
		t.Errorf("streamed NATed list differs from batch (%d vs %d bytes)",
			natStream.Len(), natBatch.Len())
	}

	var obsBatch strings.Builder
	for _, a := range s.BTObserved.Sorted() {
		obsBatch.WriteString(a.String())
		obsBatch.WriteByte('\n')
	}
	if obsStream.String() != obsBatch.String() {
		t.Errorf("streamed observed list differs from batch (%d vs %d bytes)",
			obsStream.Len(), obsBatch.Len())
	}
}

// TestStreamArtifactsErrors checks that a failing sink aborts the stream
// with a wrapped error, for both artifacts, and that nil callbacks skip
// their artifact entirely.
func TestStreamArtifactsErrors(t *testing.T) {
	s, _ := smallStudy(t, 1)
	boom := errors.New("sink full")

	err := s.StreamArtifacts(ArtifactSink{
		NATedList: func([]byte) error { return boom },
	}, 0)
	if !errors.Is(err, boom) {
		t.Errorf("NATed sink error = %v, want wrapped %v", err, boom)
	}

	err = s.StreamArtifacts(ArtifactSink{
		ObservedIPs: func([]byte) error { return boom },
	}, 2)
	if !errors.Is(err, boom) {
		t.Errorf("observed sink error = %v, want wrapped %v", err, boom)
	}

	// A sink with no callbacks is a no-op, not a failure.
	if err := s.StreamArtifacts(ArtifactSink{}, 0); err != nil {
		t.Errorf("empty sink: %v", err)
	}
}

// TestRunStreaming runs the all-in-one entry point on a fresh study and
// checks the report arrives alongside the streamed bytes.
func TestRunStreaming(t *testing.T) {
	wp := blgen.TestParams(5)
	wp.Scale = 0.05
	s := NewStudy(Config{
		Seed:            5,
		World:           &wp,
		CrawlDuration:   2 * time.Hour,
		SurveyBlockFrac: 0.1,
		SurveyDuration:  24 * time.Hour,
	})
	var streamed int
	rep, err := s.RunStreaming(ArtifactSink{
		NATedList:   func(chunk []byte) error { streamed += len(chunk); return nil },
		ObservedIPs: func(chunk []byte) error { streamed += len(chunk); return nil },
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("RunStreaming returned nil report")
	}
	if streamed == 0 {
		t.Error("RunStreaming streamed no bytes")
	}
}

// TestBuildSwarmSharded covers the sharded construction path and the Swarm
// dispatch helpers: the group fabric advances in lockstep, carries traffic,
// and rejects fault scenarios.
func TestBuildSwarmSharded(t *testing.T) {
	wp := blgen.TestParams(9)
	wp.Scale = 0.05
	w := blgen.Generate(wp)

	s, err := BuildSwarm(w, SwarmConfig{Seed: 1, Shards: 3, ShardWorkers: 2, Compact: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Group == nil || s.Clock != nil || s.Net != nil {
		t.Fatal("sharded swarm should use the group fabric exclusively")
	}
	start := s.Now()
	s.RunFor(time.Minute)
	if got := s.Now().Sub(start); got != time.Minute {
		t.Errorf("RunFor advanced %v, want 1m", got)
	}
	st := s.NetStats()
	if st.Sent == 0 || st.Delivered == 0 {
		t.Errorf("sharded fabric carried no traffic: %+v", st)
	}
	// The crawler's vantage address must get a shard-local clock and socket.
	vantage := iputil.AddrFrom4(198, 18, 0, 1)
	if s.ClockAt(vantage) == nil {
		t.Fatal("ClockAt returned nil")
	}
	sock, err := s.Listen(netsim.Endpoint{Addr: vantage, Port: 6881})
	if err != nil {
		t.Fatal(err)
	}
	if ep, ok := sock.PublicEndpoint(); !ok || ep.Addr != vantage {
		t.Errorf("vantage endpoint = %v, %v", ep, ok)
	}

	if _, err := BuildSwarm(w, SwarmConfig{Seed: 1, Shards: 2, Faults: &faults.Scenario{}}, nil); err == nil {
		t.Error("sharded swarm with faults should be rejected")
	}
}
