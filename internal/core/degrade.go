package core

import (
	"fmt"

	"github.com/reuseblock/reuseblock/internal/faults"
	"github.com/reuseblock/reuseblock/internal/stats"
)

// The paper's measurements were taken on networks that misbehaved constantly
// — unanswered queries, rate limits, churn — and the authors shipped results
// anyway, with caveats. This file gives the reproduction the same posture:
// when a fault scenario is active, a failed or fault-starved stage degrades
// the study to partial results plus an explicit Degradation report instead
// of aborting the run.

// StageReport describes how one pipeline stage fared under faults.
type StageReport struct {
	Stage  string // e.g. "crawl vantage 0"
	Status string // "ok", "degraded" or "failed"
	Detail string
}

// Degradation summarises what the fault scenario did to the study: which
// stages failed or limped, what was salvaged, and which confidence caveats
// apply to the rendered numbers. It is built only from deterministic stage
// statistics, so a seeded run always produces the same report.
type Degradation struct {
	Scenario string
	Stages   []StageReport
	Caveats  []string
}

// respRateFloor is the crawl response rate under which NAT detection is
// considered fault-starved: the paper's own crawl sat near 51%, and the
// verification rule needs multiple replies per round to confirm anything.
const respRateFloor = 0.05

// buildDegradation composes the report after all stages have completed. It
// runs single-threaded over stage outputs recorded by the stages themselves.
func (s *Study) buildDegradation() *Degradation {
	scn := s.Config.Faults
	if scn == nil && len(s.crawlStages) == 0 {
		return nil
	}
	d := &Degradation{Scenario: "none"}
	if scn != nil {
		d.Scenario = scn.Name
		if d.Scenario == "" {
			d.Scenario = "custom"
		}
	}
	d.Stages = append(d.Stages, s.crawlStages...)

	if !s.Config.SkipCrawl {
		failed := 0
		for _, st := range s.crawlStages {
			if st.Status == "failed" {
				failed++
			}
		}
		if failed > 0 {
			d.Caveats = append(d.Caveats, fmt.Sprintf(
				"%d of %d crawl vantages failed; NAT results merged from the survivors only",
				failed, s.Config.Vantages))
		}
		if rate := s.CrawlStats.ResponseRate; rate < respRateFloor {
			d.Caveats = append(d.Caveats, fmt.Sprintf(
				"crawl response rate %.1f%% is below the %.0f%% floor; NAT coverage is fault-starved",
				rate*100, respRateFloor*100))
		}
		if s.CrawlStats.Evicted > 0 {
			d.Caveats = append(d.Caveats, fmt.Sprintf(
				"%d endpoints evicted as persistently dead; coverage behind them is lost",
				s.CrawlStats.Evicted))
		}
	}
	if scn != nil && scn.Byzantine != nil {
		d.Caveats = append(d.Caveats,
			"byzantine nodes fabricated neighbours; unique-IP and scope-suppression counts include phantom endpoints")
	}
	if scn != nil && len(scn.Storms) > 0 {
		d.Caveats = append(d.Caveats,
			"restart storms churned endpoints mid-crawl; port counts overstate concurrent users between ping rounds")
	}
	if s.Cai != nil {
		status := "ok"
		detail := fmt.Sprintf("%d probes", s.Cai.ProbesSent)
		if s.Cai.Retransmissions > 0 {
			status = "degraded"
			detail = fmt.Sprintf("%d probes, %d retransmissions", s.Cai.ProbesSent, s.Cai.Retransmissions)
			d.Caveats = append(d.Caveats,
				"ICMP probe loss consumed retransmits; availability metrics are biased low")
		}
		d.Stages = append(d.Stages, StageReport{Stage: "ICMP baseline", Status: status, Detail: detail})
	}
	return d
}

// DegradationTable renders the degradation report. Only called when the
// study ran with a fault scenario; fault-free reports stay byte-identical.
func (r *Report) DegradationTable() *stats.Table {
	d := r.study.Degradation
	t := stats.NewTable(fmt.Sprintf("Degradation report (scenario: %s)", d.Scenario),
		"Stage", "Status", "Detail")
	for _, st := range d.Stages {
		t.AddRow(st.Stage, st.Status, st.Detail)
	}
	for i, c := range d.Caveats {
		t.AddRow(fmt.Sprintf("caveat %d", i+1), "", c)
	}
	if len(d.Stages) == 0 && len(d.Caveats) == 0 {
		t.AddRow("all stages", "ok", "scenario injected no observable degradation")
	}
	return t
}

// crawlFaultStats sums the per-vantage injector counters.
func sumFaultStats(parts []faults.Stats) faults.Stats {
	var out faults.Stats
	for _, p := range parts {
		out.BurstDropped += p.BurstDropped
		out.BlackoutDropped += p.BlackoutDropped
		out.RateLimited += p.RateLimited
		out.Corrupted += p.Corrupted
	}
	return out
}
