package core

import (
	"fmt"
	"io"
	"strings"

	"github.com/reuseblock/reuseblock/internal/analysis"
	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/obs"
	"github.com/reuseblock/reuseblock/internal/parallel"
	"github.com/reuseblock/reuseblock/internal/stats"
)

// Report carries every reproduced table and figure of the paper plus the
// extra ground-truth scores the synthetic world makes possible.
type Report struct {
	study *Study

	PerList   *analysis.PerListReuse
	Durations *analysis.Durations
	NATUsers  *analysis.NATUsers
	Overlap   *analysis.ASOverlap
	Funnel    *analysis.Funnel

	// Ground-truth scores (not in the paper — made possible by the
	// simulator): crawler NAT detection and RIPE fast-pool detection.
	NATScore  analysis.PrecisionRecall
	RIPEScore analysis.PrecisionRecall

	// ReusedAddrs is the published artifact: every blocklisted reused
	// address either technique detected.
	ReusedAddrs *iputil.Set
}

// buildReport computes every figure and table. The computations only read
// the study's stage outputs and write disjoint Report fields, so they run as
// a parallel DAG under Config.Workers; each is deterministic on its own, so
// the report is identical for any worker count. detectedNAT is computed
// up-front because two tasks share it read-only.
func (s *Study) buildReport() *Report {
	r := &Report{study: s}

	detectedNAT := iputil.NewSet()
	for addr := range s.Inputs.NATUsers {
		detectedNAT.Add(addr)
	}

	parallel.Do(s.Config.Workers,
		func() { r.PerList = analysis.ComputePerListReuse(s.Inputs) },
		func() { r.Durations = analysis.ComputeDurations(s.Inputs) },
		func() { r.NATUsers = analysis.ComputeNATUsers(s.Inputs) },
		func() { r.Overlap = analysis.ComputeASOverlap(s.Inputs) },
		func() {
			stages := analysis.RIPEStages{
				SameAS:   prefixesOf(s.RIPE.SameASAddresses),
				Frequent: prefixesOf(s.RIPE.FrequentAddresses),
				Daily:    s.RIPE.DynamicPrefixes,
			}
			r.Funnel = analysis.ComputeFunnel(s.Inputs, s.CrawlStats.UniqueIPs, stages)
		},
		func() {
			// Ground truth: crawler NAT detection vs BT≥2 gateways.
			trueNAT := iputil.NewSet()
			for _, n := range s.World.NATs {
				if n.BTUsers >= 2 {
					trueNAT.Add(n.Addr)
				}
			}
			r.NATScore = analysis.Score(detectedNAT, trueNAT)
		},
		func() {
			// Ground truth: RIPE fast-pool detection vs daily pools.
			detectedDyn := iputil.NewSet()
			for _, p := range s.RIPE.DynamicPrefixes.Sorted() {
				detectedDyn.Add(p.Base())
			}
			trueDyn := iputil.NewSet()
			for _, p := range s.World.TrueFastDynamic.Sorted() {
				trueDyn.Add(p.Base())
			}
			r.RIPEScore = analysis.Score(detectedDyn, trueDyn)
		},
		func() {
			// The published reused-address list:
			// blocklisted ∩ (NATed ∪ dynamic).
			r.ReusedAddrs = iputil.NewSet()
			for _, a := range s.World.Collection.AllAddrs().Sorted() {
				if detectedNAT.Contains(a) || s.RIPE.DynamicPrefixes.Covers(a) {
					r.ReusedAddrs.Add(a)
				}
			}
		},
	)
	return r
}

func prefixesOf(addrs *iputil.Set) *iputil.PrefixSet {
	if addrs == nil {
		return nil
	}
	return addrs.Slash24s()
}

// Manifest returns the run manifest of the study that produced this report
// (see Study.Manifest). It is not part of Render — the manifest carries
// wall-clock metrics and build stamps, while Render stays golden-stable.
func (r *Report) Manifest() *obs.Manifest { return r.study.Manifest() }

// CrawlStatsTable renders the §4 crawl statistics.
func (r *Report) CrawlStatsTable() *stats.Table {
	st := r.study.CrawlStats
	t := stats.NewTable("Section 4: crawl statistics", "Metric", "Value")
	t.AddRow("get_nodes sent", fmt.Sprint(st.GetNodesSent))
	t.AddRow("bt_ping sent", fmt.Sprint(st.PingsSent))
	t.AddRow("messages sent", fmt.Sprint(st.MessagesSent))
	t.AddRow("responses received", fmt.Sprint(st.MessagesReceived))
	t.AddRow("response rate", stats.Percent(st.ResponseRate))
	t.AddRow("unique BitTorrent IPs", fmt.Sprint(st.UniqueIPs))
	t.AddRow("unique node IDs", fmt.Sprint(st.UniqueNodeIDs))
	t.AddRow("NATed IPs", fmt.Sprint(st.NATedIPs))
	t.AddRow("ping rounds", fmt.Sprint(st.PingRoundsRun))
	t.AddRow("late replies", fmt.Sprint(st.LateReplies))
	t.AddRow("retries", fmt.Sprint(st.Retries))
	t.AddRow("endpoints evicted", fmt.Sprint(st.Evicted))
	return t
}

// Table1 renders the operator-survey summary.
func (r *Report) Table1() *stats.Table {
	s := r.study.Survey
	t := stats.NewTable("Table 1: Summary of survey responses", "Question", "Response")
	t.AddRow("External blocklists", stats.Percent(s.ExternalPct))
	t.AddRow("Paid-for blocklists", fmt.Sprintf("Avg:%.0f Max:%d", s.PaidAvg, s.PaidMax))
	t.AddRow("Public blocklists", fmt.Sprintf("Avg:%.0f Max:%d", s.PublicAvg, s.PublicMax))
	t.AddRow("Directly block IPs", stats.Percent(s.DirectBlockPct))
	t.AddRow("Threat intelligence system", stats.Percent(s.ThreatIntelPct))
	t.AddRow("Dynamic addressing*", stats.Percent(s.DynamicPct))
	t.AddRow("Carrier-grade NATs*", stats.Percent(s.CGNPct))
	t.AddRow("(*) respondents", fmt.Sprintf("%d of %d", s.ReuseRespondents, s.Respondents))
	return t
}

// Table2 renders the maintainer registry.
func (r *Report) Table2() *stats.Table {
	t := stats.NewTable("Table 2: blocklists per maintainer", "Maintainer", "# of blocklists")
	total := 0
	for _, mc := range r.study.World.Registry.MaintainerCounts() {
		name := mc.Maintainer
		if mc.Surveyed {
			name = "*" + name
		}
		t.AddRow(name, fmt.Sprint(mc.Count))
		total += mc.Count
	}
	t.AddRow("Total", fmt.Sprint(total))
	return t
}

// Figure2 renders the per-probe allocation curve with the knee threshold.
func (r *Report) Figure2() *stats.Figure {
	f := stats.NewFigure("Figure 2: IP addresses allocated to RIPE Atlas probes",
		"RIPE Atlas probes (ranked)", "(#) of allocated addresses")
	ranked := stats.RankDescending(r.study.RIPE.AllocationCounts)
	step := len(ranked)/128 + 1
	var pts []stats.Point
	for i := 0; i < len(ranked); i += step {
		pts = append(pts, stats.Point{X: float64(i + 1), Y: float64(ranked[i])})
	}
	f.Add("allocated addresses", pts)
	f.Add("threshold", []stats.Point{
		{X: 1, Y: float64(r.study.RIPE.KneeThreshold)},
		{X: float64(len(ranked)), Y: float64(r.study.RIPE.KneeThreshold)},
	})
	return f
}

// Figure9 renders the operator blocklist-type usage bars.
func (r *Report) Figure9() *stats.Figure {
	f := stats.NewFigure("Figure 9: blocklist types used by reuse-affected operators",
		"(%) of operators", "blocklist type (rank order)")
	var pts []stats.Point
	for i, u := range r.study.TypeUsage {
		pts = append(pts, stats.Point{X: float64(i + 1), Y: u.Percent * 100})
	}
	f.Add("type usage", pts)
	return f
}

// SummaryTable condenses the paper's headline claims next to the measured
// values from this run.
func (r *Report) SummaryTable() *stats.Table {
	reg := r.study.World.Registry
	nFeeds := reg.Len()
	t := stats.NewTable("Headline results: paper vs this run", "Quantity", "Paper", "This run")
	withNAT := nFeeds - r.PerList.FeedsWithoutNATed
	withDyn := nFeeds - r.PerList.FeedsWithoutDynamic
	t.AddRow("blocklists with ≥1 NATed address",
		"60%", stats.Percent(stats.Fraction(withNAT, nFeeds)))
	t.AddRow("blocklists with ≥1 dynamic address",
		"53%", stats.Percent(stats.Fraction(withDyn, nFeeds)))
	t.AddRow("NATed listings", "45.1K", fmt.Sprint(r.PerList.NATedListings))
	t.AddRow("dynamic listings", "30.6K", fmt.Sprint(r.PerList.DynamicListings))
	t.AddRow("dynamic listings (Cai et al. baseline)", "29.8K", fmt.Sprint(r.PerList.CaiDynamicListings))
	t.AddRow("NATed addresses listed", "29.7K", fmt.Sprint(r.PerList.NATedAddrs))
	t.AddRow("dynamic addresses listed", "22.7K", fmt.Sprint(r.PerList.DynamicAddrs))
	t.AddRow("max users behind one blocklisted IP", "78", fmt.Sprint(r.NATUsers.Max))
	t.AddRow("max days reused address listed", "44", fmt.Sprint(r.Durations.MaxReusedDays))
	for i, m := range r.Durations.MaxReusedPerWindow {
		paperBound := "39"
		if i == 1 {
			paperBound = "44"
		}
		t.AddRow(fmt.Sprintf("  within window %d alone", i+1), "≤"+paperBound, fmt.Sprint(m))
	}
	t.AddRow("mean days listed (all)", "9", fmt.Sprintf("%.1f", r.Durations.AllMean))
	t.AddRow("mean days listed (NATed)", "10", fmt.Sprintf("%.1f", r.Durations.NATedMean))
	t.AddRow("mean days listed (dynamic)", "3", fmt.Sprintf("%.1f", r.Durations.DynamicMean))
	t.AddRow("2-day removal (all)", "42%", stats.Percent(r.Durations.AllTwoDay))
	t.AddRow("2-day removal (NATed)", "60%", stats.Percent(r.Durations.NATedTwoDay))
	t.AddRow("2-day removal (dynamic)", "77.5%", stats.Percent(r.Durations.DynamicTwoDay))
	t.AddRow("NATed addrs with exactly 2 users", "68.5%", stats.Percent(r.NATUsers.ExactlyTwo))
	t.AddRow("NATed addrs with <10 users", "97.8%", stats.Percent(r.NATUsers.UnderTen))
	t.AddRow("ASes w/ blocklisted addrs having BT", "29.6%",
		stats.Percent(stats.Fraction(r.Overlap.ASesWithBT, r.Overlap.ASesWithBlocklisted)))
	t.AddRow("ASes w/ blocklisted addrs having RIPE", "17.1%",
		stats.Percent(stats.Fraction(r.Overlap.ASesWithRIPE, r.Overlap.ASesWithBlocklisted)))
	t.AddRow("top-10 lists' share of NATed listings", "65.9%", stats.Percent(r.PerList.Top10NATedShare))
	t.AddRow("top-10 lists' share of dynamic listings", "72.6%", stats.Percent(r.PerList.Top10DynamicShare))
	t.AddRow("crawler response rate", "48.6%", stats.Percent(r.study.CrawlStats.ResponseRate))
	t.AddRow("RIPE knee threshold (Fig 2)", "8", fmt.Sprint(r.study.RIPE.KneeThreshold))
	return t
}

// GroundTruthTable reports detector precision/recall against the synthetic
// world's ground truth (beyond the paper).
func (r *Report) GroundTruthTable() *stats.Table {
	t := stats.NewTable("Ground truth scores (simulator only)", "Detector", "Precision", "Recall")
	t.AddRow("crawler NAT detection (vs BT≥2 gateways)",
		fmt.Sprintf("%.3f", r.NATScore.Precision), fmt.Sprintf("%.3f", r.NATScore.Recall))
	t.AddRow("RIPE fast-pool detection (vs daily pools)",
		fmt.Sprintf("%.3f", r.RIPEScore.Precision), fmt.Sprintf("%.3f", r.RIPEScore.Recall))
	return t
}

// WriteReusedList writes the paper's published artifact: the reused-address
// list in plain blocklist format.
func (r *Report) WriteReusedList(w io.Writer) error {
	return blocklist.WritePlain(w, r.ReusedAddrs,
		"reused (NATed or dynamically allocated) blocklisted IPv4 addresses")
}

// Render returns the full text report: every table and figure in paper
// order.
func (r *Report) Render() string {
	var b strings.Builder
	sections := []string{
		r.CrawlStatsTable().Render(),
		r.Figure2().Render(),
		r.Overlap.Figure3().Render(),
		r.Funnel.Table().Render(),
		r.PerList.Figure5().Render(),
		r.PerList.Figure6().Render(),
		r.Durations.Figure7().Render(),
		r.NATUsers.Figure8().Render(),
		r.Table1().Render(),
		r.Figure9().Render(),
		r.Table2().Render(),
		r.SummaryTable().Render(),
		r.GroundTruthTable().Render(),
	}
	if r.study.Degradation != nil {
		sections = append(sections, r.DegradationTable().Render())
	}
	for _, s := range sections {
		b.WriteString(s)
		b.WriteByte('\n')
	}
	return b.String()
}
