package core

import (
	"fmt"
	"runtime"
	"time"

	"github.com/reuseblock/reuseblock/internal/analysis"
	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/crawler"
	"github.com/reuseblock/reuseblock/internal/dht"
	"github.com/reuseblock/reuseblock/internal/faults"
	"github.com/reuseblock/reuseblock/internal/icmpsurvey"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/netsim"
	"github.com/reuseblock/reuseblock/internal/obs"
	"github.com/reuseblock/reuseblock/internal/parallel"
	"github.com/reuseblock/reuseblock/internal/ripeatlas"
	"github.com/reuseblock/reuseblock/internal/survey"
)

// Config tunes a full study run. Zero values pick calibrated defaults.
type Config struct {
	Seed int64
	// World overrides the generated world's parameters; nil uses
	// blgen.DefaultParams(Seed).
	World *blgen.Params

	// CrawlDuration is the simulated length of the BitTorrent crawl. The
	// paper crawled for the full 83 days; detection saturates far sooner,
	// so the default is 48 hours of simulated time.
	CrawlDuration time.Duration
	// Loss is the fabric's datagram loss (default 0.26 — chosen so the
	// crawler's response rate lands near the paper's 48.6%, which also
	// reflects NAT filtering and stale entries, not just loss).
	Loss float64
	// RestrictScope restricts the crawler to blocklisted /24 space like
	// the paper (§3.1); default true. Set ScopeAll to crawl everything.
	ScopeAll bool
	// RestartsPerDay is the public BitTorrent clients' daily restart rate
	// (port + node-ID churn — the §3.1 stale-information confound);
	// negative disables, zero means the default 0.15.
	RestartsPerDay float64
	// Vantages is the number of crawler vantage points run in parallel
	// from different networks — the coverage/burden improvement §3.1
	// suggests. Default 1 (the paper's setup); results are merged.
	Vantages int

	// Survey (Cai et al. baseline) settings.
	SurveyBlockFrac float64       // fraction of world /24s sampled (default 0.5)
	SurveyDuration  time.Duration // default 14 days
	SurveyInterval  time.Duration // default 1 hour

	// SkipCrawl / SkipICMP skip the expensive stages (for quick looks at
	// feed-only statistics); the corresponding results stay empty.
	SkipCrawl bool
	SkipICMP  bool

	// Faults injects a scripted fault scenario into the run (see
	// internal/faults): wire-level faults shape every vantage's network,
	// byzantine marking and restart storms shape the swarm, and ICMP
	// faults shape the Cai baseline. The crawler gains retries and
	// endpoint eviction, failed vantages degrade to partial results, and
	// the report carries a Degradation section. Nil (the default) changes
	// nothing: output stays byte-identical to a fault-free run.
	Faults *faults.Scenario

	// Shards partitions each vantage's simulated fabric into this many
	// independently clocked event-loop shards advancing in conservative
	// lockstep windows (netsim.ShardGroup). 0 or 1 (the default) keeps the
	// single-threaded fabric and byte-identical artifacts; sharded runs are
	// deterministic per shard count but not byte-equal to monolithic ones.
	// Incompatible with Faults.
	Shards int
	// Compact switches swarm nodes to pooled compact state with an 8-byte
	// RNG, cutting per-host memory roughly in half at paper scale. Changes
	// RNG sequences, so artifacts differ from default-scale goldens;
	// intended for scale worlds (see BENCH_scale.json).
	Compact bool

	// Workers bounds the parallelism of every deterministic fan-out in the
	// study: the independent measurement stages (crawl, RIPE pipeline,
	// ICMP baseline, survey), the per-vantage crawl simulations, feed
	// generation, the ICMP block shards, the analysis joins, and the
	// report's figure/table DAG. Each unit of work is seeded and collected
	// independently of scheduling, so output is bit-for-bit identical for
	// any value. Default (<= 0) is GOMAXPROCS; 1 forces the legacy
	// sequential path with no goroutines.
	Workers int

	// Obs, when non-nil, collects the run's metrics: deterministic counts
	// (queries, probes, fault drops, detections) whose snapshots are
	// byte-identical for any Workers value, plus wall-clock values under
	// the obs.WallPrefix namespace. Nil (the default) records nothing and
	// leaves all output byte-identical to an uninstrumented run.
	Obs *obs.Registry
	// Trace, when non-nil, collects hierarchical spans (study → stage →
	// vantage → ping round / sweep). Span structure and attributes are
	// deterministic; only wall timestamps vary between runs.
	Trace *obs.Tracer
}

func (c *Config) applyDefaults() {
	if c.CrawlDuration <= 0 {
		c.CrawlDuration = 48 * time.Hour
	}
	if c.Loss <= 0 {
		c.Loss = 0.26
	}
	if c.SurveyBlockFrac <= 0 {
		c.SurveyBlockFrac = 0.5
	}
	if c.SurveyDuration <= 0 {
		c.SurveyDuration = 14 * 24 * time.Hour
	}
	if c.SurveyInterval <= 0 {
		c.SurveyInterval = time.Hour
	}
	if c.RestartsPerDay == 0 {
		c.RestartsPerDay = 0.15
	}
	if c.RestartsPerDay < 0 {
		c.RestartsPerDay = 0
	}
	if c.Vantages <= 0 {
		c.Vantages = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// Study is one end-to-end reproduction run.
type Study struct {
	Config Config
	World  *blgen.World

	// Results, populated by Run.
	CrawlStats crawler.Stats
	NATed      []crawler.NATObservation
	BTObserved *iputil.Set
	RIPE       *ripeatlas.Result
	Cai        *icmpsurvey.Result
	Survey     survey.Summary
	TypeUsage  []survey.TypeUsage
	Inputs     *analysis.Inputs
	// Degradation explains what a fault scenario did to this run; nil for
	// fault-free runs. FaultStats sums the wire-level injector counters
	// across vantages.
	Degradation *Degradation
	FaultStats  faults.Stats

	// crawlStages records per-vantage outcomes for the degradation report.
	crawlStages []StageReport
	// stageStatuses records per-stage outcomes for the run manifest.
	stageStatuses []obs.StageStatus
	// parallelBase snapshots the process-global pool counters at study
	// creation so finishObs can report per-run diffs.
	parallelBase parallel.Counters
}

// NewStudy generates the world for a study.
func NewStudy(cfg Config) *Study {
	cfg.applyDefaults()
	var wp blgen.Params
	if cfg.World != nil {
		wp = *cfg.World
	} else {
		wp = blgen.DefaultParams(cfg.Seed)
	}
	if wp.Workers == 0 {
		wp.Workers = cfg.Workers
	}
	base := parallel.Snapshot()
	return &Study{Config: cfg, World: blgen.Generate(wp), parallelBase: base}
}

// NewStudyFromWorld wraps an already-generated world; useful when several
// studies (different crawl settings, ablations) share one world.
func NewStudyFromWorld(w *blgen.World, cfg Config) *Study {
	cfg.applyDefaults()
	return &Study{Config: cfg, World: w, parallelBase: parallel.Snapshot()}
}

// Run executes every stage and returns the full report.
//
// Stages 1–4 (crawl, RIPE pipeline, ICMP baseline, survey) only read the
// world and write disjoint Study fields, so they run concurrently under
// Config.Workers; stage 5 joins their outputs. With Workers == 1 the stages
// run inline in the legacy order and the output is identical either way.
func (s *Study) Run() (*Report, error) {
	w := s.World
	if err := s.Config.Faults.Validate(); err != nil {
		return nil, err
	}
	root := s.Config.Trace.Root("study",
		obs.Int("seed", s.Config.Seed),
		obs.Int("vantages", int64(s.Config.Vantages)),
		obs.String("faults", s.faultName()),
	)

	natUsers := make(map[iputil.Addr]int)
	s.BTObserved = iputil.NewSet()
	var crawlErr error
	parallel.Do(s.Config.Workers,
		// Stage 1: the BitTorrent crawl over the simulated network.
		s.stage(root, "crawl", func(sp *obs.Span) { crawlErr = s.runCrawl(natUsers, sp) }),
		// Stage 2: the RIPE dynamic-address pipeline over the fleet logs.
		s.stage(root, "ripe", func(*obs.Span) {
			s.RIPE = ripeatlas.Detect(w.RIPELogs, ripeatlas.DetectOptions{})
		}),
		// Stage 3: the Cai et al. ICMP baseline over sampled blocks.
		s.stage(root, "icmp", func(*obs.Span) {
			if s.Config.SkipICMP {
				return
			}
			icmpCfg := icmpsurvey.Config{
				Blocks:   s.sampleBlocks(),
				Start:    w.RIPEStart,
				Duration: s.Config.SurveyDuration,
				Interval: s.Config.SurveyInterval,
				Workers:  s.Config.Workers,
				Obs:      s.Config.Obs,
			}
			if f := s.Config.Faults; f != nil && f.ICMP != nil {
				icmpCfg.ProbeLoss = f.ICMP.ProbeLoss
				icmpCfg.Retransmits = f.ICMP.Retransmits
				icmpCfg.Seed = s.Config.Seed ^ 0x49434d50 // "ICMP"
			}
			s.Cai = icmpsurvey.Run(w, icmpCfg)
		}),
		// Stage 4: the operator survey tabulations.
		s.stage(root, "survey", func(*obs.Span) {
			responses := survey.StandardResponses(s.Config.Seed)
			s.Survey = survey.Summarize(responses)
			s.TypeUsage = survey.TypesAmongAffected(responses)
		}),
	)
	if crawlErr != nil {
		root.End()
		return nil, crawlErr
	}

	// Stage 5: joins.
	s.Inputs = &analysis.Inputs{
		Collection:      w.Collection,
		NATUsers:        natUsers,
		BTObserved:      s.BTObserved,
		DynamicPrefixes: s.RIPE.DynamicPrefixes,
		RIPEPrefixes:    s.RIPE.RIPEPrefixes,
		Workers:         s.Config.Workers,
		ASNOf: func(a iputil.Addr) (int, bool) {
			pi, ok := w.PrefixOf(a)
			if !ok {
				return 0, false
			}
			return pi.ASN, true
		},
	}
	if s.Cai != nil {
		s.Inputs.CaiBlocks = s.Cai.DynamicBlocks
	}
	s.Degradation = s.buildDegradation()
	s.noteStages(crawlErr)
	join := root.Child("join")
	rep := s.buildReport()
	join.End()
	s.finishObs(rep)
	root.End()
	return rep, nil
}

// vantageRun is one crawler vantage point's complete output.
type vantageRun struct {
	stats  crawler.Stats
	nated  []crawler.NATObservation
	ips    *iputil.Set
	faults faults.Stats
	net    netsim.Stats
	err    error
}

// runCrawl runs the crawl stage: Config.Vantages crawler vantage points in
// distinct networks (198.18.0.0/15 is benchmarking space — our measurement
// hosts). Each vantage drives its own simulator instance — netsim is
// single-threaded, so one goroutine per instance is the only safe shape —
// seeded only by (Config.Seed, vantage index), and the per-vantage results
// merge in vantage order, so the outcome is independent of scheduling.
func (s *Study) runCrawl(natUsers map[iputil.Addr]int, crawlSpan *obs.Span) error {
	if s.Config.SkipCrawl {
		return nil
	}
	w := s.World
	scopeSet := w.BlocklistedSpace()
	var scope func(iputil.Addr) bool
	if !s.Config.ScopeAll {
		scope = scopeSet.Covers
	}
	runs := parallel.Map(s.Config.Workers, s.Config.Vantages, func(v int) vantageRun {
		vsp := crawlSpan.Child(fmt.Sprintf("vantage %d", v))
		defer vsp.End()
		// Vantage 0 reuses the plain study seed so a single-vantage run
		// reproduces the original single-swarm results exactly.
		swarm, err := BuildSwarm(w, SwarmConfig{
			Loss:           s.Config.Loss,
			Seed:           s.Config.Seed ^ int64(v)<<20,
			RestartsPerDay: s.Config.RestartsPerDay,
			ChurnHorizon:   s.Config.CrawlDuration,
			Faults:         s.Config.Faults,
			Shards:         s.Config.Shards,
			ShardWorkers:   s.Config.Workers,
			Compact:        s.Config.Compact,
		}, scopeSet.Covers)
		if err != nil {
			vsp.SetAttr(obs.String("error", err.Error()))
			return vantageRun{err: err}
		}
		vantageAddr := iputil.AddrFrom4(198, 18, byte(v), 1)
		sock, err := swarm.Listen(netsim.Endpoint{Addr: vantageAddr, Port: 9999})
		if err != nil {
			vsp.SetAttr(obs.String("error", err.Error()))
			return vantageRun{err: err}
		}
		crawlCfg := crawler.Config{
			Bootstrap: []netsim.Endpoint{swarm.Bootstrap},
			Scope:     scope,
			Seed:      s.Config.Seed ^ 0x4352574c ^ int64(v)<<32, // "CRWL"
			Obs:       s.Config.Obs,
			Trace:     vsp,
		}
		if s.Config.Faults != nil {
			// Resilience policy under faults: bounded retries with backoff
			// and eviction of persistently dead endpoints. Off by default
			// so fault-free runs reproduce the original byte stream.
			crawlCfg.MaxRetries = 2
			crawlCfg.RetryBase = 2 * time.Second
			crawlCfg.EvictAfter = 4
		}
		// The crawler schedules on the clock owning its vantage address; on
		// a sharded fabric that is one shard of the group, and RunFor
		// advances every shard in lockstep.
		c := crawler.New(sock, dht.SimClock(swarm.ClockAt(vantageAddr)), crawlCfg)
		// Let NATed users' mappings open before crawling starts.
		swarm.RunFor(time.Minute)
		c.Start()
		swarm.RunFor(s.Config.CrawlDuration)
		c.Stop()
		st := c.Stats()
		vsp.SetAttr(obs.Int("queries", st.MessagesSent))
		vsp.SetAttr(obs.Int("replies", st.MessagesReceived))
		vsp.SetAttr(obs.Int("unique_ips", int64(st.UniqueIPs)))
		return vantageRun{stats: st, nated: c.NATed(), ips: c.ObservedIPs(),
			faults: swarm.Injector.Stats(), net: swarm.NetStats()}
	})
	var statParts []crawler.Stats
	var obsParts [][]crawler.NATObservation
	var faultParts []faults.Stats
	salvage := s.Config.Faults != nil
	survivors := 0
	for v, r := range runs {
		if r.err != nil {
			// Under a fault scenario a dead vantage degrades the study
			// instead of aborting it; the report carries the loss.
			if !salvage {
				return r.err
			}
			s.crawlStages = append(s.crawlStages, StageReport{
				Stage:  fmt.Sprintf("crawl vantage %d", v),
				Status: "failed",
				Detail: r.err.Error(),
			})
			continue
		}
		survivors++
		if salvage {
			status := "ok"
			if r.stats.ResponseRate < respRateFloor {
				status = "degraded"
			}
			s.crawlStages = append(s.crawlStages, StageReport{
				Stage:  fmt.Sprintf("crawl vantage %d", v),
				Status: status,
				Detail: fmt.Sprintf("%.1f%% response rate, %d fault drops, %d retries, %d evicted",
					r.stats.ResponseRate*100, r.faults.Total(), r.stats.Retries, r.stats.Evicted),
			})
		}
		statParts = append(statParts, r.stats)
		obsParts = append(obsParts, r.nated)
		faultParts = append(faultParts, r.faults)
		// Fabric and injector counters merge here, after the fan-out, in
		// vantage order: each vantage's counts come from its own
		// single-threaded simulator, so the sums are worker-invariant. The
		// injector series only exist when a scenario is active.
		r.net.Record(s.Config.Obs)
		if s.Config.Faults != nil {
			r.faults.Record(s.Config.Obs, s.faultName())
		}
		s.BTObserved.AddSet(r.ips)
	}
	if survivors == 0 {
		return fmt.Errorf("core: all %d crawl vantages failed", s.Config.Vantages)
	}
	s.FaultStats = sumFaultStats(faultParts)
	s.NATed = crawler.MergeObservations(obsParts...)
	s.CrawlStats = crawler.MergeStats(statParts...)
	s.CrawlStats.UniqueIPs = s.BTObserved.Len()
	uniqueIDs := 0
	for _, p := range statParts {
		if p.UniqueNodeIDs > uniqueIDs {
			uniqueIDs = p.UniqueNodeIDs
		}
	}
	s.CrawlStats.UniqueNodeIDs = uniqueIDs
	s.CrawlStats.NATedIPs = len(s.NATed)
	for _, o := range s.NATed {
		natUsers[o.Addr] = o.Users
	}
	return nil
}

// sampleBlocks picks the ICMP survey's block sample deterministically: every
// k'th world /24 so the sample spans all prefix kinds.
func (s *Study) sampleBlocks() []iputil.Prefix {
	frac := s.Config.SurveyBlockFrac
	var all []iputil.Prefix
	for _, a := range s.World.ASes {
		for _, pi := range a.Prefixes {
			all = append(all, pi.Prefix)
		}
	}
	if frac >= 1 {
		return all
	}
	step := int(1 / frac)
	if step < 1 {
		step = 1
	}
	var out []iputil.Prefix
	for i := 0; i < len(all); i += step {
		out = append(out, all[i])
	}
	return out
}
