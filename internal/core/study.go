package core

import (
	"time"

	"github.com/reuseblock/reuseblock/internal/analysis"
	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/crawler"
	"github.com/reuseblock/reuseblock/internal/dht"
	"github.com/reuseblock/reuseblock/internal/icmpsurvey"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/netsim"
	"github.com/reuseblock/reuseblock/internal/ripeatlas"
	"github.com/reuseblock/reuseblock/internal/survey"
)

// Config tunes a full study run. Zero values pick calibrated defaults.
type Config struct {
	Seed int64
	// World overrides the generated world's parameters; nil uses
	// blgen.DefaultParams(Seed).
	World *blgen.Params

	// CrawlDuration is the simulated length of the BitTorrent crawl. The
	// paper crawled for the full 83 days; detection saturates far sooner,
	// so the default is 48 hours of simulated time.
	CrawlDuration time.Duration
	// Loss is the fabric's datagram loss (default 0.26 — chosen so the
	// crawler's response rate lands near the paper's 48.6%, which also
	// reflects NAT filtering and stale entries, not just loss).
	Loss float64
	// RestrictScope restricts the crawler to blocklisted /24 space like
	// the paper (§3.1); default true. Set ScopeAll to crawl everything.
	ScopeAll bool
	// RestartsPerDay is the public BitTorrent clients' daily restart rate
	// (port + node-ID churn — the §3.1 stale-information confound);
	// negative disables, zero means the default 0.15.
	RestartsPerDay float64
	// Vantages is the number of crawler vantage points run in parallel
	// from different networks — the coverage/burden improvement §3.1
	// suggests. Default 1 (the paper's setup); results are merged.
	Vantages int

	// Survey (Cai et al. baseline) settings.
	SurveyBlockFrac float64       // fraction of world /24s sampled (default 0.5)
	SurveyDuration  time.Duration // default 14 days
	SurveyInterval  time.Duration // default 1 hour

	// SkipCrawl / SkipICMP skip the expensive stages (for quick looks at
	// feed-only statistics); the corresponding results stay empty.
	SkipCrawl bool
	SkipICMP  bool
}

func (c *Config) applyDefaults() {
	if c.CrawlDuration <= 0 {
		c.CrawlDuration = 48 * time.Hour
	}
	if c.Loss <= 0 {
		c.Loss = 0.26
	}
	if c.SurveyBlockFrac <= 0 {
		c.SurveyBlockFrac = 0.5
	}
	if c.SurveyDuration <= 0 {
		c.SurveyDuration = 14 * 24 * time.Hour
	}
	if c.SurveyInterval <= 0 {
		c.SurveyInterval = time.Hour
	}
	if c.RestartsPerDay == 0 {
		c.RestartsPerDay = 0.15
	}
	if c.RestartsPerDay < 0 {
		c.RestartsPerDay = 0
	}
	if c.Vantages <= 0 {
		c.Vantages = 1
	}
}

// Study is one end-to-end reproduction run.
type Study struct {
	Config Config
	World  *blgen.World

	// Results, populated by Run.
	CrawlStats crawler.Stats
	NATed      []crawler.NATObservation
	BTObserved *iputil.Set
	RIPE       *ripeatlas.Result
	Cai        *icmpsurvey.Result
	Survey     survey.Summary
	TypeUsage  []survey.TypeUsage
	Inputs     *analysis.Inputs
}

// NewStudy generates the world for a study.
func NewStudy(cfg Config) *Study {
	cfg.applyDefaults()
	var wp blgen.Params
	if cfg.World != nil {
		wp = *cfg.World
	} else {
		wp = blgen.DefaultParams(cfg.Seed)
	}
	return &Study{Config: cfg, World: blgen.Generate(wp)}
}

// NewStudyFromWorld wraps an already-generated world; useful when several
// studies (different crawl settings, ablations) share one world.
func NewStudyFromWorld(w *blgen.World, cfg Config) *Study {
	cfg.applyDefaults()
	return &Study{Config: cfg, World: w}
}

// Run executes every stage and returns the full report.
func (s *Study) Run() (*Report, error) {
	w := s.World

	// Stage 1: the BitTorrent crawl over the simulated network.
	natUsers := make(map[iputil.Addr]int)
	s.BTObserved = iputil.NewSet()
	if !s.Config.SkipCrawl {
		scopeSet := w.BlocklistedSpace()
		var scope func(iputil.Addr) bool
		if !s.Config.ScopeAll {
			scope = scopeSet.Covers
		}
		swarm, err := BuildSwarm(w, SwarmConfig{
			Loss:           s.Config.Loss,
			Seed:           s.Config.Seed,
			RestartsPerDay: s.Config.RestartsPerDay,
			ChurnHorizon:   s.Config.CrawlDuration,
		}, scopeSet.Covers)
		if err != nil {
			return nil, err
		}
		// One or more crawler vantage points in distinct networks
		// (198.18.0.0/15 is benchmarking space — our measurement hosts).
		var crawlers []*crawler.Crawler
		for v := 0; v < s.Config.Vantages; v++ {
			sock, err := swarm.Net.Listen(netsim.Endpoint{
				Addr: iputil.AddrFrom4(198, 18, byte(v), 1), Port: 9999,
			})
			if err != nil {
				return nil, err
			}
			crawlers = append(crawlers, crawler.New(sock, dht.SimClock(swarm.Clock), crawler.Config{
				Bootstrap: []netsim.Endpoint{swarm.Bootstrap},
				Scope:     scope,
				Seed:      s.Config.Seed ^ 0x4352574c ^ int64(v)<<32, // "CRWL"
			}))
		}
		// Let NATed users' mappings open before crawling starts.
		swarm.Clock.RunFor(time.Minute)
		for _, c := range crawlers {
			c.Start()
		}
		swarm.Clock.RunFor(s.Config.CrawlDuration)
		var statParts []crawler.Stats
		var obsParts [][]crawler.NATObservation
		for _, c := range crawlers {
			c.Stop()
			statParts = append(statParts, c.Stats())
			obsParts = append(obsParts, c.NATed())
			s.BTObserved.AddSet(c.ObservedIPs())
		}
		s.NATed = crawler.MergeObservations(obsParts...)
		s.CrawlStats = crawler.MergeStats(statParts...)
		s.CrawlStats.UniqueIPs = s.BTObserved.Len()
		uniqueIDs := 0
		for _, p := range statParts {
			if p.UniqueNodeIDs > uniqueIDs {
				uniqueIDs = p.UniqueNodeIDs
			}
		}
		s.CrawlStats.UniqueNodeIDs = uniqueIDs
		s.CrawlStats.NATedIPs = len(s.NATed)
		for _, o := range s.NATed {
			natUsers[o.Addr] = o.Users
		}
	}

	// Stage 2: the RIPE dynamic-address pipeline over the fleet logs.
	s.RIPE = ripeatlas.Detect(w.RIPELogs, ripeatlas.DetectOptions{})

	// Stage 3: the Cai et al. ICMP baseline over sampled blocks.
	if !s.Config.SkipICMP {
		s.Cai = icmpsurvey.Run(w, icmpsurvey.Config{
			Blocks:   s.sampleBlocks(),
			Start:    w.RIPEStart,
			Duration: s.Config.SurveyDuration,
			Interval: s.Config.SurveyInterval,
		})
	}

	// Stage 4: the operator survey tabulations.
	responses := survey.StandardResponses(s.Config.Seed)
	s.Survey = survey.Summarize(responses)
	s.TypeUsage = survey.TypesAmongAffected(responses)

	// Stage 5: joins.
	s.Inputs = &analysis.Inputs{
		Collection:      w.Collection,
		NATUsers:        natUsers,
		BTObserved:      s.BTObserved,
		DynamicPrefixes: s.RIPE.DynamicPrefixes,
		RIPEPrefixes:    s.RIPE.RIPEPrefixes,
		ASNOf: func(a iputil.Addr) (int, bool) {
			pi, ok := w.PrefixOf(a)
			if !ok {
				return 0, false
			}
			return pi.ASN, true
		},
	}
	if s.Cai != nil {
		s.Inputs.CaiBlocks = s.Cai.DynamicBlocks
	}
	return s.buildReport(), nil
}

// sampleBlocks picks the ICMP survey's block sample deterministically: every
// k'th world /24 so the sample spans all prefix kinds.
func (s *Study) sampleBlocks() []iputil.Prefix {
	frac := s.Config.SurveyBlockFrac
	var all []iputil.Prefix
	for _, a := range s.World.ASes {
		for _, pi := range a.Prefixes {
			all = append(all, pi.Prefix)
		}
	}
	if frac >= 1 {
		return all
	}
	step := int(1 / frac)
	if step < 1 {
		step = 1
	}
	var out []iputil.Prefix
	for i := 0; i < len(all); i += step {
		out = append(out, all[i])
	}
	return out
}
