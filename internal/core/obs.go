package core

import (
	"fmt"
	"time"

	"github.com/reuseblock/reuseblock/internal/obs"
	"github.com/reuseblock/reuseblock/internal/parallel"
)

// This file is the study's observability seam: stage spans and wall-clock
// timings, per-run metric finalisation, stage statuses, and the run
// manifest. Everything here is a no-op when Config.Obs and Config.Trace are
// both nil — the default for every existing entry point — so fault-free,
// metrics-off output stays byte-identical to the committed goldens.

// faultName names the configured scenario for labels and the manifest:
// "" (fault-free), the catalogue name, or "custom".
func (s *Study) faultName() string {
	if s.Config.Faults == nil {
		return ""
	}
	if s.Config.Faults.Name != "" {
		return s.Config.Faults.Name
	}
	return "custom"
}

// stage wraps one pipeline stage task with a trace span and a wall-clock
// duration gauge. The span is passed to fn so stages with internal fan-out
// (the crawl's vantages) can hang children under it.
func (s *Study) stage(parent *obs.Span, name string, fn func(sp *obs.Span)) func() {
	if s.Config.Obs == nil && s.Config.Trace == nil {
		return func() { fn(nil) }
	}
	return func() {
		sp := parent.Child(name)
		start := time.Now()
		fn(sp)
		s.Config.Obs.Gauge(obs.Name(obs.WallPrefix+"stage_millis", "stage", name)).
			Set(time.Since(start).Milliseconds())
		sp.End()
	}
}

// noteStages records each stage's outcome for the manifest. Statuses derive
// only from deterministic stage statistics.
func (s *Study) noteStages(crawlErr error) {
	add := func(stage, status, detail string) {
		s.stageStatuses = append(s.stageStatuses, obs.StageStatus{
			Stage: stage, Status: status, Detail: detail,
		})
	}
	switch {
	case s.Config.SkipCrawl:
		add("crawl", "skipped", "")
	case crawlErr != nil:
		add("crawl", "failed", crawlErr.Error())
	default:
		status := "ok"
		for _, st := range s.crawlStages {
			if st.Status != "ok" {
				status = "degraded"
				break
			}
		}
		add("crawl", status, fmt.Sprintf("%d vantages, %.1f%% response rate, %d NATed IPs",
			s.Config.Vantages, s.CrawlStats.ResponseRate*100, s.CrawlStats.NATedIPs))
	}
	add("ripe", "ok", fmt.Sprintf("%d dynamic prefixes", s.RIPE.DynamicPrefixes.Len()))
	if s.Cai == nil {
		add("icmp", "skipped", "")
	} else {
		status := "ok"
		if s.Cai.Retransmissions > 0 {
			status = "degraded"
		}
		add("icmp", status, fmt.Sprintf("%d probes, %d dynamic blocks",
			s.Cai.ProbesSent, s.Cai.DynamicBlocks.Len()))
	}
	add("survey", "ok", fmt.Sprintf("%d respondents", s.Survey.Respondents))
}

// finishObs records the study-level metrics once the report exists: world
// shape, headline detections, and the per-run parallel-pool counters. The
// worker-dependent pool numbers (tasks follow worker-derived sharding,
// goroutines follow the worker cap) go to the wall namespace; batch counts
// and every detection count are worker-invariant.
func (s *Study) finishObs(rep *Report) {
	reg := s.Config.Obs
	if reg == nil {
		return
	}
	reg.Gauge("world_ases").Set(int64(len(s.World.ASes)))
	reg.Gauge("world_bt_users").Set(int64(len(s.World.BTUsers)))
	reg.Gauge("world_feeds").Set(int64(s.World.Registry.Len()))
	reg.Gauge("report_nated_ips").Set(int64(s.CrawlStats.NATedIPs))
	reg.Gauge("report_unique_ips").Set(int64(s.CrawlStats.UniqueIPs))
	reg.Gauge("ripe_dynamic_prefixes").Set(int64(s.RIPE.DynamicPrefixes.Len()))
	reg.Gauge("report_reused_addrs").Set(int64(rep.ReusedAddrs.Len()))
	if name := s.faultName(); name != "" {
		reg.Gauge(obs.Name("faults_scenario_active", "scenario", name)).Set(1)
	}

	d := parallel.Snapshot().Sub(s.parallelBase)
	reg.Counter("parallel_batches_total").Add(d.Batches)
	reg.Counter(obs.WallPrefix + "parallel_tasks_total").Add(d.Tasks)
	reg.Counter(obs.WallPrefix + "parallel_inline_tasks_total").Add(d.Inline)
	reg.Counter(obs.WallPrefix + "parallel_goroutines_total").Add(d.Spawned)
	reg.Gauge(obs.WallPrefix + "parallel_max_batch").SetMax(d.MaxBatch)
	reg.Gauge(obs.WallPrefix + "workers").Set(int64(s.Config.Workers))
}

// Manifest builds the run's audit record: parameters, build provenance,
// per-stage statuses, and the full metric snapshot (wall namespace
// included — consumers wanting the golden-stable subset filter by
// obs.WallPrefix or use Config.Obs.DeterministicSnapshot directly). Call
// after Run; before Run it carries the parameters only.
func (s *Study) Manifest() *obs.Manifest {
	m := obs.NewManifest()
	m.Seed = s.Config.Seed
	if s.Config.World != nil {
		m.Scale = s.Config.World.Scale
	}
	m.Workers = s.Config.Workers
	m.Vantages = s.Config.Vantages
	m.FaultScenario = s.faultName()
	m.Stages = append(m.Stages, s.stageStatuses...)
	if s.Degradation != nil {
		for _, st := range s.Degradation.Stages {
			m.Stages = append(m.Stages, obs.StageStatus{
				Stage: st.Stage, Status: st.Status, Detail: st.Detail,
			})
		}
	}
	m.Metrics = s.Config.Obs.Snapshot(true)
	return m
}
