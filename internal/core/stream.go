package core

import (
	"fmt"
	"strconv"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// ArtifactSink receives a study's crawl artifacts incrementally, one bounded
// window at a time, so a paper-scale run never has to materialize a full
// artifact in memory (at 100× world scale the rendered lists alone reach
// hundreds of megabytes). Chunks arrive in ascending address order and
// concatenate to exactly the batch bytes: the NATed list matches
// blocklist.WriteNATedList over the same observations, the observed list is
// one address per line. Either callback may be nil to skip that artifact; a
// callback returning an error aborts the stream with that error. Callbacks
// must not retain the chunk slice — it is reused for the next window.
type ArtifactSink struct {
	// NATedHeader is the comment header for the NATed list ("" for none),
	// the counterpart of blocklist.WriteNATedList's header argument.
	NATedHeader string
	// NATedList receives successive windows of the rendered NATed-address
	// list ("addr<TAB>users" lines, user bounds clamped to the confirmation
	// minimum of 2).
	NATedList func(chunk []byte) error
	// ObservedIPs receives successive windows of the observed-address list,
	// one dotted-quad address per line.
	ObservedIPs func(chunk []byte) error
}

// streamWindow is the default number of entries per emitted chunk.
const streamWindow = 4096

// StreamArtifacts emits the crawl artifacts through sink in windows of at
// most window entries (<= 0 picks the default 4096). Peak extra heap is
// O(window), independent of world scale — the batch writers' whole-artifact
// buffers and sorted address slices are exactly what paper-scale runs
// cannot afford.
func (s *Study) StreamArtifacts(sink ArtifactSink, window int) error {
	if window <= 0 {
		window = streamWindow
	}
	buf := make([]byte, 0, 64*window)
	if sink.NATedList != nil {
		if sink.NATedHeader != "" {
			buf = append(buf, "# "...)
			buf = append(buf, sink.NATedHeader...)
			buf = append(buf, '\n')
		}
		n := 0
		for _, o := range s.NATed {
			users := o.Users
			if users < 2 {
				users = 2
			}
			buf = o.Addr.AppendText(buf)
			buf = append(buf, '\t')
			buf = strconv.AppendInt(buf, int64(users), 10)
			buf = append(buf, '\n')
			if n++; n == window {
				if err := sink.NATedList(buf); err != nil {
					return fmt.Errorf("core: streaming NATed list: %w", err)
				}
				buf, n = buf[:0], 0
			}
		}
		if len(buf) > 0 {
			if err := sink.NATedList(buf); err != nil {
				return fmt.Errorf("core: streaming NATed list: %w", err)
			}
			buf = buf[:0]
		}
	}
	if sink.ObservedIPs != nil && s.BTObserved != nil {
		n := 0
		var ferr error
		s.BTObserved.Iterate(func(a iputil.Addr) bool {
			buf = a.AppendText(buf)
			buf = append(buf, '\n')
			if n++; n == window {
				if ferr = sink.ObservedIPs(buf); ferr != nil {
					return false
				}
				buf, n = buf[:0], 0
			}
			return true
		})
		if ferr != nil {
			return fmt.Errorf("core: streaming observed list: %w", ferr)
		}
		if len(buf) > 0 {
			if err := sink.ObservedIPs(buf); err != nil {
				return fmt.Errorf("core: streaming observed list: %w", err)
			}
		}
	}
	return nil
}

// RunStreaming runs every study stage, then streams the crawl artifacts
// through sink in bounded windows. The report is built and returned as
// usual; only artifact rendering is windowed.
func (s *Study) RunStreaming(sink ArtifactSink, window int) (*Report, error) {
	rep, err := s.Run()
	if err != nil {
		return nil, err
	}
	return rep, s.StreamArtifacts(sink, window)
}
