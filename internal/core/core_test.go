package core

import (
	"strings"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/iputil"
)

// smallStudy runs a fast end-to-end study for tests.
func smallStudy(t *testing.T, seed int64) (*Study, *Report) {
	t.Helper()
	wp := blgen.TestParams(seed)
	wp.Scale = 0.15
	s := NewStudy(Config{
		Seed:            seed,
		World:           &wp,
		CrawlDuration:   6 * time.Hour,
		SurveyBlockFrac: 0.1,
		SurveyDuration:  3 * 24 * time.Hour,
	})
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return s, rep
}

func TestStudyEndToEnd(t *testing.T) {
	s, rep := smallStudy(t, 1)
	if s.CrawlStats.UniqueIPs == 0 {
		t.Error("crawl observed no IPs")
	}
	if s.CrawlStats.ResponseRate <= 0 || s.CrawlStats.ResponseRate >= 1 {
		t.Errorf("response rate = %v", s.CrawlStats.ResponseRate)
	}
	if s.RIPE.TotalProbes == 0 {
		t.Error("no RIPE probes")
	}
	if s.Cai == nil || len(s.Cai.Blocks) == 0 {
		t.Error("no ICMP survey blocks")
	}
	if s.Survey.Respondents != 65 {
		t.Errorf("survey respondents = %d", s.Survey.Respondents)
	}
	if rep.PerList == nil || rep.Durations == nil || rep.NATUsers == nil ||
		rep.Overlap == nil || rep.Funnel == nil {
		t.Fatal("report missing sections")
	}
}

func TestStudyNATDetectionSound(t *testing.T) {
	s, rep := smallStudy(t, 2)
	// Every detected NATed address must truly be a multi-user gateway.
	for _, o := range s.NATed {
		truth, ok := s.World.NATByIP[o.Addr]
		if !ok {
			t.Errorf("false positive NAT %v", o.Addr)
			continue
		}
		if o.Users > truth.BTUsers {
			t.Errorf("NAT %v: lower bound %d exceeds truth %d", o.Addr, o.Users, truth.BTUsers)
		}
		if o.Users < 2 {
			t.Errorf("NAT %v: user bound %d < 2", o.Addr, o.Users)
		}
	}
	if rep.NATScore.Precision < 0.9 {
		t.Errorf("NAT precision = %v", rep.NATScore.Precision)
	}
}

func TestStudyRIPESound(t *testing.T) {
	s, rep := smallStudy(t, 3)
	// Detected dynamic prefixes are true dynamic pools.
	for _, p := range s.RIPE.DynamicPrefixes.Sorted() {
		if !s.World.TrueAnyDynamic.Contains(p) {
			t.Errorf("false positive dynamic prefix %v", p)
		}
	}
	if rep.RIPEScore.Precision < 0.99 && s.RIPE.DynamicPrefixes.Len() > 0 {
		t.Errorf("RIPE precision = %v", rep.RIPEScore.Precision)
	}
}

func TestReportRenderComplete(t *testing.T) {
	_, rep := smallStudy(t, 4)
	out := rep.Render()
	for _, want := range []string{
		"Section 4: crawl statistics",
		"Figure 2:", "Figure 3:", "Figure 4:", "Figure 5:",
		"Figure 6:", "Figure 7:", "Figure 8:", "Figure 9:",
		"Table 1:", "Table 2:",
		"Headline results", "Ground truth scores",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestReusedListWritten(t *testing.T) {
	_, rep := smallStudy(t, 5)
	var sb strings.Builder
	if err := rep.WriteReusedList(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "#") {
		t.Error("reused list missing header")
	}
	lines := strings.Count(sb.String(), "\n")
	if lines != rep.ReusedAddrs.Len()+1 {
		t.Errorf("list lines = %d, addrs = %d", lines, rep.ReusedAddrs.Len())
	}
}

func TestStudyDeterministic(t *testing.T) {
	s1, r1 := smallStudy(t, 7)
	s2, r2 := smallStudy(t, 7)
	if s1.CrawlStats != s2.CrawlStats {
		t.Errorf("crawl stats differ:\n%+v\n%+v", s1.CrawlStats, s2.CrawlStats)
	}
	if r1.PerList.NATedListings != r2.PerList.NATedListings ||
		r1.PerList.DynamicListings != r2.PerList.DynamicListings {
		t.Error("listings differ between identical runs")
	}
	if r1.ReusedAddrs.Len() != r2.ReusedAddrs.Len() {
		t.Error("reused lists differ")
	}
}

func TestSkipStages(t *testing.T) {
	wp := blgen.TestParams(8)
	s := NewStudy(Config{Seed: 8, World: &wp, SkipCrawl: true, SkipICMP: true})
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s.CrawlStats.MessagesSent != 0 {
		t.Error("crawl ran despite SkipCrawl")
	}
	if s.Cai != nil {
		t.Error("ICMP ran despite SkipICMP")
	}
	if rep.PerList.NATedListings != 0 {
		t.Error("NAT listings without a crawl")
	}
	// Dynamic detection must still work.
	if s.RIPE == nil {
		t.Error("RIPE stage skipped unexpectedly")
	}
}

func TestBuildSwarmInvariants(t *testing.T) {
	w := blgen.Generate(blgen.TestParams(9))
	swarm, err := BuildSwarm(w, SwarmConfig{Seed: 9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(swarm.Nodes) != len(w.BTUsers) {
		t.Errorf("nodes = %d, users = %d", len(swarm.Nodes), len(w.BTUsers))
	}
	natCount := 0
	for _, u := range w.BTUsers {
		if u.BehindNAT {
			natCount++
		}
	}
	if natCount > 0 && len(swarm.NATs) == 0 {
		t.Error("no NAT gateways instantiated")
	}
	// Every node learned at least one neighbour.
	for i, n := range swarm.Nodes {
		if n.TableSize() == 0 {
			t.Errorf("node %d has empty table", i)
		}
	}
	// The mapping-opening pings are queued; run them.
	swarm.Clock.RunFor(time.Minute)
	for addr, nat := range swarm.NATs {
		truth := w.NATByIP[addr]
		if truth.BTUsers > 0 && nat.ActiveMappings() == 0 {
			t.Errorf("NAT %v: no mappings after opening pings", addr)
		}
	}
}

func TestSampleBlocks(t *testing.T) {
	wp := blgen.TestParams(10)
	s := NewStudy(Config{Seed: 10, World: &wp, SurveyBlockFrac: 0.5})
	blocks := s.sampleBlocks()
	total := 0
	for _, a := range s.World.ASes {
		total += len(a.Prefixes)
	}
	if len(blocks) < total/3 || len(blocks) > total*2/3+1 {
		t.Errorf("sampled %d of %d blocks at frac 0.5", len(blocks), total)
	}
	seen := map[iputil.Prefix]bool{}
	for _, b := range blocks {
		if seen[b] {
			t.Fatal("duplicate sampled block")
		}
		seen[b] = true
	}
}

func TestChurnDoesNotBreakPrecision(t *testing.T) {
	wp := blgen.TestParams(12)
	wp.Scale = 0.15
	s := NewStudy(Config{
		Seed:           12,
		World:          &wp,
		CrawlDuration:  12 * time.Hour,
		RestartsPerDay: 2, // aggressive churn
		SkipICMP:       true,
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, o := range s.NATed {
		if _, ok := s.World.NATByIP[o.Addr]; !ok {
			t.Errorf("churn produced false positive NAT %v", o.Addr)
		}
	}
	// Churn must have left traces: multi-port IPs beyond the NATs.
	if s.CrawlStats.MultiPortIPs <= s.CrawlStats.NATedIPs {
		t.Logf("multi-port %d vs NATed %d (churn may not have hit crawled IPs in a tiny world)",
			s.CrawlStats.MultiPortIPs, s.CrawlStats.NATedIPs)
	}
}

func TestChurnDisabled(t *testing.T) {
	wp := blgen.TestParams(13)
	s := NewStudy(Config{Seed: 13, World: &wp, RestartsPerDay: -1, SkipCrawl: true, SkipICMP: true})
	if s.Config.RestartsPerDay != 0 {
		t.Errorf("RestartsPerDay = %v, want 0 after negative", s.Config.RestartsPerDay)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
