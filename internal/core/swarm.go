// Package core orchestrates the full reproduction: generate a synthetic
// world (blgen), instantiate its BitTorrent population as live DHT nodes on
// the simulated network (netsim/dht), run the paper's crawler against it,
// run the RIPE dynamic-address pipeline and the Cai et al. ICMP baseline,
// join everything with the blocklist feeds, and render every table and
// figure of the paper as a Report.
package core

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/dht"
	"github.com/reuseblock/reuseblock/internal/faults"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/krpc"
	"github.com/reuseblock/reuseblock/internal/netsim"
)

// Swarm is the instantiated BitTorrent population.
type Swarm struct {
	// Clock and Net are the monolithic fabric; nil when the swarm was built
	// sharded (use RunFor / Listen / ClockAt / NetStats, which dispatch).
	Clock *netsim.Clock
	Net   *netsim.Network
	// Group is the sharded fabric; nil on the default monolithic path.
	Group     *netsim.ShardGroup
	Nodes     []*dht.Node
	Endpoints []netsim.Endpoint // public endpoints known at build time
	NATs      map[iputil.Addr]*netsim.NAT
	// Bootstrap is the crawler's entry point (a long-lived public node
	// inside the blocklisted address space when possible).
	Bootstrap netsim.Endpoint
	// Injector is the wire-level fault injector, nil on fault-free swarms.
	Injector *faults.Injector

	arena   dht.NodeArena // backing storage for all node state
	compact bool          // nodes use the compact RNG (SwarmConfig.Compact)
}

// clockFor returns the event clock owning addr.
func (s *Swarm) clockFor(a iputil.Addr) *netsim.Clock {
	if s.Group != nil {
		return s.Group.ShardFor(a).Clock
	}
	return s.Clock
}

// netFor returns the fabric slice owning addr.
func (s *Swarm) netFor(a iputil.Addr) *netsim.Network {
	if s.Group != nil {
		return s.Group.ShardFor(a).Net
	}
	return s.Net
}

// RunFor advances the swarm's virtual time by d — across all shards in
// lockstep when the fabric is sharded.
func (s *Swarm) RunFor(d time.Duration) {
	if s.Group != nil {
		s.Group.RunFor(d)
		return
	}
	s.Clock.RunFor(d)
}

// Now returns the swarm's virtual time.
func (s *Swarm) Now() time.Time {
	if s.Group != nil {
		return s.Group.Now()
	}
	return s.Clock.Now()
}

// Listen binds a public endpoint on whichever fabric slice owns its address.
func (s *Swarm) Listen(ep netsim.Endpoint) (netsim.Socket, error) {
	return s.netFor(ep.Addr).Listen(ep)
}

// ClockAt returns the clock owning addr; components living at a fixed
// address (such as a crawler) must schedule on their own shard's clock.
func (s *Swarm) ClockAt(a iputil.Addr) *netsim.Clock { return s.clockFor(a) }

// NetStats sums fabric traffic counters across shards.
func (s *Swarm) NetStats() netsim.Stats {
	if s.Group != nil {
		return s.Group.Stats()
	}
	return s.Net.Stats()
}

// SwarmConfig tunes swarm instantiation.
type SwarmConfig struct {
	// Loss, LatencyBase and LatencyJitter shape the simulated fabric.
	Loss          float64
	LatencyBase   time.Duration
	LatencyJitter time.Duration
	// MeshDegree is how many random neighbours seed each node's table.
	MeshDegree int
	// NATMappingTTL and NATKeepalive govern NATed nodes' reachability;
	// keepalives refresh mappings, at simulation cost.
	NATMappingTTL time.Duration
	NATKeepalive  time.Duration
	// RestartsPerDay is each public user's daily client-restart rate: a
	// restarted client rebinds on a new port with a regenerated node ID,
	// producing exactly the multi-port-one-user confound the paper's
	// bt_ping verification exists to reject (§3.1). Zero disables churn.
	RestartsPerDay float64
	// ChurnHorizon bounds how far ahead restarts are scheduled (set it to
	// the planned crawl duration; default 48 h).
	ChurnHorizon time.Duration
	Seed         int64
	// Faults scripts scenario misbehaviour into the swarm: wire faults
	// install on the network, a Byzantine fraction of users fabricate
	// find_node neighbours, and restart storms churn public users at the
	// scripted instants. Nil changes nothing.
	Faults *faults.Scenario
	// Shards > 1 partitions the fabric by /16 address block into that many
	// independently clocked event loops advancing in conservative lockstep
	// windows (see netsim.ShardGroup). 0 or 1 keeps the monolithic fabric,
	// byte-identical to previous releases. Sharded runs are deterministic
	// for a fixed shard count but draw per-shard RNG streams, so their
	// artifacts differ from monolithic goldens. Incompatible with Faults.
	Shards int
	// ShardWorkers bounds how many shards execute concurrently within one
	// window; any value produces identical results. Default 1.
	ShardWorkers int
	// Compact swaps each node's private RNG for an 8-byte splitmix64 state
	// (the stock math/rand source costs 4.9 KiB per node — half the
	// per-host footprint at paper scale). Different RNG sequence, so
	// artifacts differ from golden runs; intended for scale worlds.
	Compact bool
}

func (c *SwarmConfig) applyDefaults() {
	if c.LatencyBase <= 0 {
		c.LatencyBase = 20 * time.Millisecond
	}
	if c.LatencyJitter <= 0 {
		c.LatencyJitter = 60 * time.Millisecond
	}
	if c.MeshDegree <= 0 {
		c.MeshDegree = 8
	}
	if c.NATMappingTTL <= 0 {
		c.NATMappingTTL = time.Hour
	}
	if c.NATKeepalive <= 0 {
		c.NATKeepalive = 20 * time.Minute
	}
}

// BuildSwarm instantiates every BitTorrent user of the world as a live DHT
// node: public users bind their address directly; NATed users bind behind
// their gateway's NAT with its ground-truth filtering mode. Tables are
// seeded with a random mesh so the crawler can traverse the whole swarm.
func BuildSwarm(w *blgen.World, cfg SwarmConfig, inScope func(iputil.Addr) bool) (*Swarm, error) {
	cfg.applyDefaults()
	netCfg := netsim.Config{
		Loss:          cfg.Loss,
		LatencyBase:   cfg.LatencyBase,
		LatencyJitter: cfg.LatencyJitter,
		Seed:          cfg.Seed ^ 0x4e455453, // "NETS"
	}
	s := &Swarm{NATs: make(map[iputil.Addr]*netsim.NAT), compact: cfg.Compact}
	if cfg.Shards > 1 {
		if cfg.Faults != nil {
			return nil, fmt.Errorf("core: fault scenarios require the monolithic fabric (Shards <= 1)")
		}
		group, err := netsim.NewShardGroup(cfg.Shards, cfg.ShardWorkers, netCfg)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		s.Group = group
	} else {
		clock := netsim.NewClock()
		inj, err := faults.NewInjector(cfg.Faults, cfg.Seed^0x464c5453, clock) // "FLTS"
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		inj.Install(&netCfg)
		net, err := netsim.NewNetwork(clock, netCfg)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		s.Clock, s.Net, s.Injector = clock, net, inj
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5357524d)) // "SWRM"

	var byz *faults.Byzantine
	if cfg.Faults != nil {
		byz = cfg.Faults.Byzantine
	}
	for _, u := range w.BTUsers {
		var sock netsim.Socket
		var err error
		if u.BehindNAT {
			nat := s.NATs[u.PublicAddr]
			if nat == nil {
				truth := w.NATByIP[u.PublicAddr]
				filtering := netsim.FullCone
				if truth != nil && truth.Restricted {
					filtering = netsim.AddressRestricted
				}
				nat, err = netsim.NewNAT(s.netFor(u.PublicAddr), netsim.NATConfig{
					PublicAddr: u.PublicAddr,
					Filtering:  filtering,
					MappingTTL: cfg.NATMappingTTL,
				})
				if err != nil {
					return nil, fmt.Errorf("core: NAT at %s: %w", u.PublicAddr, err)
				}
				s.NATs[u.PublicAddr] = nat
			}
			sock, err = nat.Listen(u.PrivateAddr, u.Port)
		} else {
			sock, err = s.netFor(u.PublicAddr).Listen(netsim.Endpoint{Addr: u.PublicAddr, Port: u.Port})
		}
		if err != nil {
			return nil, fmt.Errorf("core: user %d: %w", u.ID, err)
		}
		nodeCfg := dht.Config{
			PrivateIP:  u.PrivateAddr,
			IDSeed:     uint64(u.ID),
			Seed:       int64(u.ID) * 7919,
			Version:    "RB01",
			CompactRNG: cfg.Compact,
		}
		if u.BehindNAT {
			nodeCfg.KeepaliveInterval = cfg.NATKeepalive
		}
		// Hash-selected byzantine users fabricate find_node neighbours;
		// the selection is a pure function of (seed, user ID), so it is
		// identical for any worker count.
		if byz != nil && faults.Selected(cfg.Seed^0x42595a, uint64(u.ID), byz.Frac) { // "BYZ"
			nodeCfg.Byzantine = true
			nodeCfg.ByzantineNodes = byz.Nodes
		}
		node := s.arena.NewNode(sock, dht.SimClock(s.clockFor(u.PublicAddr)), nodeCfg)
		s.Nodes = append(s.Nodes, node)
		s.Endpoints = append(s.Endpoints, netsim.Endpoint{Addr: u.PublicAddr, Port: u.Port})
	}

	// Mesh: every node learns MeshDegree random public users, so crawls
	// can reach the entire swarm from any entry point. NATed users'
	// entries enter tables organically once their mappings open.
	publicIdx := make([]int, 0, len(w.BTUsers))
	for i, u := range w.BTUsers {
		if !u.BehindNAT {
			publicIdx = append(publicIdx, i)
		}
	}
	if len(publicIdx) == 0 {
		return nil, fmt.Errorf("core: swarm has no publicly reachable users")
	}
	for _, node := range s.Nodes {
		for d := 0; d < cfg.MeshDegree; d++ {
			j := publicIdx[rng.Intn(len(publicIdx))]
			node.AddNode(infoOf(s.Nodes[j], s.Endpoints[j]))
		}
	}

	// NATed users open their mappings by pinging a random public user;
	// keepalives then hold the mapping for the rest of the run.
	for i, u := range w.BTUsers {
		if !u.BehindNAT {
			continue
		}
		j := publicIdx[rng.Intn(len(publicIdx))]
		s.Nodes[i].Ping(s.Endpoints[j], nil)
	}

	// Client churn: schedule restarts for public users over the horizon.
	if cfg.RestartsPerDay > 0 {
		horizon := cfg.ChurnHorizon
		if horizon <= 0 {
			horizon = 48 * time.Hour
		}
		meanGap := time.Duration(float64(24*time.Hour) / cfg.RestartsPerDay)
		for _, j := range publicIdx {
			at := time.Duration(rng.ExpFloat64() * float64(meanGap))
			for at < horizon {
				s.scheduleRestart(w, j, at, rng.Int63())
				at += time.Duration(rng.ExpFloat64() * float64(meanGap))
			}
		}
	}

	// Restart storms: at each scripted instant a hash-selected fraction
	// of public users restart simultaneously — the stale-information
	// confound of §3.1 at its worst.
	if cfg.Faults != nil {
		for i, st := range cfg.Faults.Storms {
			stormKey := cfg.Seed ^ 0x53544f52 ^ int64(i)<<48 // "STOR"
			for _, j := range publicIdx {
				if faults.Selected(stormKey, uint64(w.BTUsers[j].ID), st.Frac) {
					s.scheduleRestart(w, j, st.At, stormKey^int64(w.BTUsers[j].ID)*7919)
				}
			}
		}
	}

	// Choose an in-scope bootstrap so a scope-restricted crawler can start.
	s.Bootstrap = s.Endpoints[publicIdx[0]]
	if inScope != nil {
		for _, j := range publicIdx {
			if inScope(s.Endpoints[j].Addr) {
				s.Bootstrap = s.Endpoints[j]
				break
			}
		}
	}
	return s, nil
}

// scheduleRestart makes user j restart its client at the given offset: the
// node closes, rebinds on a fresh port, regenerates its node ID (the paper's
// reboot behaviour), and rejoins via a known neighbour.
func (s *Swarm) scheduleRestart(w *blgen.World, j int, at time.Duration, seed int64) {
	// A restarted client keeps its address (only the port moves), so its
	// owning clock and fabric slice never change.
	clock := s.clockFor(s.Endpoints[j].Addr)
	clock.After(at, func() {
		old := s.Nodes[j]
		oldEp := s.Endpoints[j]
		neighbours := old.Closest(old.ID(), 4)
		old.Close()
		newEp := netsim.Endpoint{Addr: oldEp.Addr, Port: oldEp.Port + 1 + uint16(seed%977)}
		sock, err := s.netFor(newEp.Addr).Listen(newEp)
		if err != nil {
			// Port collision with another binding: skip this restart.
			return
		}
		node := s.arena.NewNode(sock, dht.SimClock(clock), dht.Config{
			PrivateIP:  newEp.Addr,
			IDSeed:     uint64(seed), // fresh random part -> fresh node ID
			Seed:       seed,
			CompactRNG: s.compact,
		})
		for _, info := range neighbours {
			node.AddNode(info)
		}
		if len(neighbours) > 0 {
			node.Ping(netsim.Endpoint{Addr: neighbours[0].Addr, Port: neighbours[0].Port}, nil)
		}
		s.Nodes[j] = node
		s.Endpoints[j] = newEp
	})
}

func infoOf(n *dht.Node, ep netsim.Endpoint) krpc.NodeInfo {
	return krpc.NodeInfo{ID: n.ID(), Addr: ep.Addr, Port: ep.Port}
}
