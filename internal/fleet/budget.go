package fleet

import (
	"fmt"
	"math"
	"time"
)

// Budget is the fleet-wide crawl budget: an aggregate sustained query rate
// (queries/sec across all workers) plus a cap on outstanding transactions
// per worker. A zero field means "unlimited" for that dimension, matching
// the crawler's own zero-value semantics.
type Budget struct {
	// Rate is the aggregate sustained query rate for the whole fleet, in
	// queries per second. 0 disables rate limiting.
	Rate float64
	// Burst is the per-worker token-bucket depth in queries. 0 picks a
	// default of one second's worth of the worker's share (min 1).
	Burst int
	// MaxInflight is the per-worker bound on outstanding transactions.
	// 0 leaves in-flight work unbounded.
	MaxInflight int
}

// Split partitions the aggregate rate across n workers such that the shares
// sum exactly to the total (the last worker absorbs the floating-point
// remainder). Reassignment keeps the invariant: a restarted worker inherits
// the dead worker's share, so live allocations always sum to Rate.
func (b Budget) Split(n int) []Budget {
	if n < 1 {
		return nil
	}
	out := make([]Budget, n)
	per := b.Rate / float64(n)
	var allotted float64
	for i := range out {
		share := per
		if i == n-1 {
			share = b.Rate - allotted
		}
		allotted += share
		out[i] = Budget{Rate: share, Burst: b.Burst, MaxInflight: b.MaxInflight}
	}
	return out
}

// String renders the budget for logs and manifests.
func (b Budget) String() string {
	if b.Rate <= 0 && b.MaxInflight <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("rate=%.6g/s burst=%d max-inflight=%d", b.Rate, b.Burst, b.MaxInflight)
}

// TokenBucket is a deterministic token bucket over the crawl clock (the
// simulation clock in simulated runs, wall time in real ones). It implements
// crawler.Limiter: each pump tick asks for its batch and is granted whatever
// whole tokens have accrued, up to the burst depth.
//
// Determinism: the bucket's state is a pure function of the sequence of
// (now, n) calls, and the crawler's pump ticks at fixed simulated intervals,
// so for a seeded world the grant sequence — and therefore the crawl — is
// reproducible regardless of host timing.
type TokenBucket struct {
	rate   float64 // tokens per second
	burst  float64 // bucket depth
	tokens float64
	last   time.Time
	primed bool
}

// NewTokenBucket returns a bucket granting rate tokens/sec with the given
// burst depth. burst <= 0 defaults to one second of rate (minimum 1). A
// rate <= 0 returns nil, which crawler.Config treats as "no limiter".
func NewTokenBucket(rate float64, burst int) *TokenBucket {
	if rate <= 0 {
		return nil
	}
	depth := float64(burst)
	if burst <= 0 {
		depth = math.Max(1, rate)
	}
	return &TokenBucket{rate: rate, burst: depth, tokens: depth}
}

// Take implements crawler.Limiter: it accrues tokens for the time elapsed
// since the previous call and grants up to n whole tokens.
func (tb *TokenBucket) Take(now time.Time, n int) int {
	if tb == nil {
		return n
	}
	if !tb.primed {
		tb.last, tb.primed = now, true
	}
	if d := now.Sub(tb.last); d > 0 {
		tb.tokens = math.Min(tb.burst, tb.tokens+tb.rate*d.Seconds())
	}
	tb.last = now
	grant := int(tb.tokens)
	if grant > n {
		grant = n
	}
	if grant < 0 {
		grant = 0
	}
	tb.tokens -= float64(grant)
	return grant
}
