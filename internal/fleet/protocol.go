package fleet

import (
	"fmt"

	"github.com/reuseblock/reuseblock/internal/bencode"
	"github.com/reuseblock/reuseblock/internal/crawler"
)

// Control-plane wire protocol.
//
// Workers report to the coordinator over loopback UDP using the same
// KRPC-style bencoded dictionaries the crawler itself speaks: a query dict
// {t, y:"q", q:<method>, a:{...}} answered by a response dict {t, y:"r",
// r:{...}}. The krpc package deliberately rejects methods outside the DHT
// set (its Marshal validates against the protocol it models), so the fleet
// encodes its three methods directly with internal/bencode.
//
// Methods:
//
//	fleet_ready — sent once on worker start-up: {w: workerID, s: "I/N", pid}
//	fleet_hb    — periodic liveness + progress: counters snapshot
//	fleet_done  — final: full crawl statistics for MergeStats
//
// Transport is lossy-by-contract: heartbeats are fire-and-forget (the next
// one supersedes a lost one), while fleet_done is retried until acked since
// it carries the worker's contribution to the merged statistics.
const (
	MethodReady = "fleet_ready"
	MethodHB    = "fleet_hb"
	MethodDone  = "fleet_done"
)

// WireStats is the bencodable projection of crawler.Stats. bencode carries
// integers only, so ResponseRate — a derived ratio — is omitted and
// recomputed by MergeStats on the coordinator side.
type WireStats struct {
	GetNodesSent     int64 `bencode:"gns"`
	GetNodesReplies  int64 `bencode:"gnr"`
	PingsSent        int64 `bencode:"ps"`
	PingReplies      int64 `bencode:"pr"`
	Timeouts         int64 `bencode:"to"`
	Retries          int64 `bencode:"rt"`
	LateReplies      int64 `bencode:"lr"`
	Evicted          int64 `bencode:"ev"`
	UniqueIPs        int64 `bencode:"uip"`
	UniqueNodeIDs    int64 `bencode:"uid"`
	NATedIPs         int64 `bencode:"nat"`
	MultiPortIPs     int64 `bencode:"mp"`
	ScopeSuppressed  int64 `bencode:"ss"`
	SimultaneousMax  int64 `bencode:"sm"`
	PingRoundsRun    int64 `bencode:"prr"`
	SweepsRun        int64 `bencode:"sw"`
	MessagesSent     int64 `bencode:"ms"`
	MessagesReceived int64 `bencode:"mr"`
}

// ToWireStats projects crawler.Stats onto the wire form.
func ToWireStats(s crawler.Stats) WireStats {
	return WireStats{
		GetNodesSent:     s.GetNodesSent,
		GetNodesReplies:  s.GetNodesReplies,
		PingsSent:        s.PingsSent,
		PingReplies:      s.PingReplies,
		Timeouts:         s.Timeouts,
		Retries:          s.Retries,
		LateReplies:      s.LateReplies,
		Evicted:          s.Evicted,
		UniqueIPs:        int64(s.UniqueIPs),
		UniqueNodeIDs:    int64(s.UniqueNodeIDs),
		NATedIPs:         int64(s.NATedIPs),
		MultiPortIPs:     int64(s.MultiPortIPs),
		ScopeSuppressed:  s.ScopeSuppressed,
		SimultaneousMax:  int64(s.SimultaneousMax),
		PingRoundsRun:    int64(s.PingRoundsRun),
		SweepsRun:        int64(s.SweepsRun),
		MessagesSent:     s.MessagesSent,
		MessagesReceived: s.MessagesReceived,
	}
}

// Stats converts back to crawler.Stats. ResponseRate is recomputed from
// the counters, matching the crawler's own derivation.
func (w WireStats) Stats() crawler.Stats {
	s := crawler.Stats{
		GetNodesSent:     w.GetNodesSent,
		GetNodesReplies:  w.GetNodesReplies,
		PingsSent:        w.PingsSent,
		PingReplies:      w.PingReplies,
		Timeouts:         w.Timeouts,
		Retries:          w.Retries,
		LateReplies:      w.LateReplies,
		Evicted:          w.Evicted,
		UniqueIPs:        int(w.UniqueIPs),
		UniqueNodeIDs:    int(w.UniqueNodeIDs),
		NATedIPs:         int(w.NATedIPs),
		MultiPortIPs:     int(w.MultiPortIPs),
		ScopeSuppressed:  w.ScopeSuppressed,
		SimultaneousMax:  int(w.SimultaneousMax),
		PingRoundsRun:    int(w.PingRoundsRun),
		SweepsRun:        int(w.SweepsRun),
		MessagesSent:     w.MessagesSent,
		MessagesReceived: w.MessagesReceived,
	}
	if sent := s.PingsSent + s.GetNodesSent; sent > 0 {
		s.ResponseRate = float64(s.PingReplies+s.GetNodesReplies) / float64(sent)
	}
	return s
}

// Ready is the fleet_ready payload: the worker announces itself once its
// process is up, before world generation begins.
type Ready struct {
	Worker int    `bencode:"w"`
	Shard  string `bencode:"s"`
	PID    int    `bencode:"pid"`
}

// Heartbeat is the fleet_hb payload: a progress snapshot. Sent counters are
// cumulative, so the coordinator derives hosts/sec and staleness without
// needing every heartbeat to arrive.
type Heartbeat struct {
	Worker   int   `bencode:"w"`
	Sent     int64 `bencode:"tx"`
	Received int64 `bencode:"rx"`
	InFlight int64 `bencode:"if"`
	NATed    int64 `bencode:"nat"`
	// Done is 1 once the crawl loop has finished (the final heartbeat).
	Done int64 `bencode:"d,omitempty"`
}

// Done is the fleet_done payload: the worker's final statistics. OutFile is
// the path of the observations file the worker wrote (the coordinator reads
// shard observations from disk — addr<TAB>users files are the merge
// interface, same as every other stage boundary in this repo).
type Done struct {
	Worker  int       `bencode:"w"`
	Shard   string    `bencode:"s"`
	OutFile string    `bencode:"f"`
	Stats   WireStats `bencode:"st"`
	// SawBootstrap is 1 when the bootstrap address answered this worker;
	// the coordinator uses it to correct the UniqueIPs union (bootstrap is
	// the partition's single deliberate overlap, counted once).
	SawBootstrap int64 `bencode:"bs,omitempty"`
	// TruePositives is the shard's oracle hit count when ground truth is
	// available (simulated runs); -1 otherwise.
	TruePositives int64 `bencode:"tp"`
}

// EncodeQuery frames a control query: method is one of the Method*
// constants, txID correlates the ack, payload is the method struct above.
func EncodeQuery(txID, method string, payload any) ([]byte, error) {
	body, err := bencode.Marshal(payload)
	if err != nil {
		return nil, err
	}
	args, err := bencode.Decode(body)
	if err != nil {
		return nil, err
	}
	return bencode.Encode(map[string]bencode.Value{
		"t": txID,
		"y": "q",
		"q": method,
		"a": args,
	})
}

// EncodeAck frames the coordinator's response to a control query.
func EncodeAck(txID string) ([]byte, error) {
	return bencode.Encode(map[string]bencode.Value{
		"t": txID,
		"y": "r",
		"r": map[string]bencode.Value{"ok": int64(1)},
	})
}

// Decoded is one parsed control-plane datagram.
type Decoded struct {
	TxID   string
	IsAck  bool
	Method string
	// Args holds the raw payload dict for queries; decode it into the
	// method struct with DecodeArgs.
	Args bencode.Value
}

// DecodeFrame parses a control-plane datagram. Unknown or malformed frames
// return an error and are dropped by callers (lossy transport contract).
func DecodeFrame(data []byte) (Decoded, error) {
	var d Decoded
	v, err := bencode.Decode(data)
	if err != nil {
		return d, err
	}
	dict, ok := v.(map[string]bencode.Value)
	if !ok {
		return d, fmt.Errorf("fleet: control frame is not a dict")
	}
	d.TxID, _ = dict["t"].(string)
	y, _ := dict["y"].(string)
	switch y {
	case "r":
		d.IsAck = true
		return d, nil
	case "q":
		d.Method, _ = dict["q"].(string)
		switch d.Method {
		case MethodReady, MethodHB, MethodDone:
		default:
			return d, fmt.Errorf("fleet: unknown control method %q", d.Method)
		}
		d.Args, ok = dict["a"].(map[string]bencode.Value)
		if !ok {
			return d, fmt.Errorf("fleet: control query %q missing args", d.Method)
		}
		return d, nil
	default:
		return d, fmt.Errorf("fleet: control frame kind %q", y)
	}
}

// DecodeArgs decodes a query's args dict into the matching payload struct.
func DecodeArgs(args bencode.Value, dst any) error {
	raw, err := bencode.Encode(args)
	if err != nil {
		return err
	}
	return bencode.Unmarshal(raw, dst)
}
