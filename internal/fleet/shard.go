// Package fleet is the distributed-crawl coordinator subsystem: it plans an
// exact partition of the crawl scope into address shards, launches and
// supervises one blcrawl worker per shard (real processes over loopback, or
// in-process runners for tests and single-binary operation), enforces a
// global crawl budget by splitting a token-bucket rate across the workers,
// collects heartbeats over a bencoded KRPC-style UDP control plane, restarts
// and reassigns the shard of a crashed worker, and merges the per-shard
// observations into exactly the artifact set a single crawl of the same plan
// would produce.
//
// The paper's crawl ran from a single vantage and §3.1 suggests multiple
// vantage points; the fleet realises that suggestion as a production-style
// crawl manager (token-bucket rate budget, bounded in-flight work, live
// gauges, supervised workers) while preserving the repo's core invariant:
// every shard crawl is a deterministic function of (seed, scale, duration,
// shard, budget), so the merged fleet output is byte-reproducible and
// invariant under worker placement, process restarts and mid-crawl kills.
package fleet

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// ShardSpec names one member of an N-way partition of the crawl scope:
// shard I of N (1-based on the wire, the way fleet launchers number
// members). Addresses are assigned by uint32(addr) mod N, so for a fixed N
// the shards form an exact cover of the address space: every address is in
// exactly one shard, none is in two, none is in none.
type ShardSpec struct {
	Index int // 1-based: 1 <= Index <= N
	N     int
}

// String renders the spec in the wire form blcrawl's -shard flag parses.
func (s ShardSpec) String() string { return fmt.Sprintf("%d/%d", s.Index, s.N) }

// ParseShard parses a shard spec: empty means "the whole scope" (1/1),
// otherwise "I/N" with 1 <= I <= N. Rejected: malformed strings, I < 1,
// N < 1, I > N — a fleet member crawling the wrong scope would silently
// hole the merged dataset, so launchers must fail loudly.
func ParseShard(s string) (ShardSpec, error) {
	if s == "" {
		return ShardSpec{Index: 1, N: 1}, nil
	}
	is, ns, ok := strings.Cut(s, "/")
	var idx, n int
	var err error
	if ok {
		idx, err = strconv.Atoi(is)
		if err == nil {
			n, err = strconv.Atoi(ns)
		}
	}
	if !ok || err != nil || n < 1 || idx < 1 || idx > n {
		return ShardSpec{}, fmt.Errorf("invalid -shard %q: want I/N with 1 <= I <= N", s)
	}
	return ShardSpec{Index: idx, N: n}, nil
}

// Covers reports whether a falls in this shard of the partition.
func (s ShardSpec) Covers(a iputil.Addr) bool {
	return int(uint32(a)%uint32(s.N)) == s.Index-1
}

// Whole reports whether the spec is the trivial 1/1 partition (no
// sharding). The zero ShardSpec counts as whole, so an unset CrawlJob.Shard
// means "crawl everything".
func (s ShardSpec) Whole() bool { return s.N <= 1 }

// Scope composes the shard onto a crawl scope: an address is probed when the
// scope admits it and the shard owns it. The bootstrap address stays in
// every shard's scope — a scope-restricted crawler could otherwise never
// take its first step — which is the partition's single, deliberate overlap.
func (s ShardSpec) Scope(scope func(iputil.Addr) bool, bootstrap iputil.Addr) func(iputil.Addr) bool {
	if s.Whole() {
		return scope
	}
	return func(a iputil.Addr) bool {
		if scope != nil && !scope(a) {
			return false
		}
		return a == bootstrap || s.Covers(a)
	}
}

// PlanShards returns the N-way partition of the crawl scope: shards 1/N
// through N/N. The partition is an exact cover by construction (residue
// classes mod N); TestShardPartitionProperty pins the invariant.
func PlanShards(n int) ([]ShardSpec, error) {
	if n < 1 {
		return nil, fmt.Errorf("fleet: worker count %d: want at least 1", n)
	}
	shards := make([]ShardSpec, n)
	for i := range shards {
		shards[i] = ShardSpec{Index: i + 1, N: n}
	}
	return shards, nil
}
