package fleet

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/crawler"
	"github.com/reuseblock/reuseblock/internal/dht"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/netsim"
	"github.com/reuseblock/reuseblock/internal/obs"
)

// Config parameterises one coordinated fleet crawl.
type Config struct {
	Workers  int
	Seed     int64
	Scale    float64
	Duration time.Duration
	Loss     float64
	// FaultScenario is the fault scenario name ("" = fault-free).
	FaultScenario string
	// Budget is the aggregate fleet crawl budget, split evenly across the
	// shards; a shard's share follows it through restarts.
	Budget Budget

	// Runner launches workers; required.
	Runner Runner
	// Dir is the working directory for per-shard observation files.
	Dir string
	// OutFile, when non-empty, receives the merged observations.
	OutFile string

	// HBInterval is the worker heartbeat period (default 500ms).
	HBInterval time.Duration
	// HBTimeout is how stale a ready worker's heartbeat may grow before
	// the coordinator declares it hung and restarts its shard (default
	// 15s; staleness is judged from launch for workers that never
	// reported ready).
	HBTimeout time.Duration
	// MaxRestarts bounds restarts per shard (default 2). Exceeding it
	// fails the whole crawl: a shard that cannot complete would hole the
	// merged dataset.
	MaxRestarts int

	// KillWorker, when > 0, is a chaos hook: the coordinator kills that
	// worker once after its first heartbeat (plus KillAfter), then
	// supervision takes over. Proves restart-and-reassign end to end.
	KillWorker int
	KillAfter  time.Duration

	// Obs, when non-nil, receives fleet gauges and counters.
	Obs *obs.Registry
	// Log, when non-nil, receives coordinator progress lines.
	Log io.Writer
}

// WorkerStatus is one shard's final account.
type WorkerStatus struct {
	Worker        int
	Shard         string
	Attempts      int
	Restarts      int
	Killed        bool
	OutFile       string
	Stats         crawler.Stats
	TruePositives int
	SawBootstrap  bool
	Heartbeats    int64
}

// Result is the merged outcome of a fleet crawl.
type Result struct {
	// Merged is the fleet-wide observation set (union of shard files,
	// max users per address), sorted by address.
	Merged []crawler.NATObservation
	// Stats is the fleet-wide crawl statistics: counters summed via
	// crawler.MergeStats, union counts corrected for the bootstrap overlap.
	Stats         crawler.Stats
	TruePositives int
	PerWorker     []WorkerStatus
	Restarts      int
	// HostsPerSec is unique hosts observed per wall-clock second of the
	// crawl phase — the fleet's throughput figure.
	HostsPerSec float64
	// MergeElapsed is the wall time of the merge step alone.
	MergeElapsed time.Duration
	// Elapsed is the wall time of the whole run.
	Elapsed time.Duration
}

// shardState is the coordinator's view of one shard, guarded by the
// control-plane mutex.
type shardState struct {
	spec     WorkerSpec
	handle   WorkerHandle
	ready    bool
	launched time.Time
	lastHB   time.Time
	firstHB  time.Time
	hbCount  int64
	lastSnap Heartbeat
	done     *Done
	exited   bool
	exitErr  error
	exitAt   time.Time
	restarts int
	killed   bool // chaos kill performed
}

// Coordinator runs one fleet crawl: plan, launch, supervise, merge.
type Coordinator struct {
	cfg    Config
	mu     sync.Mutex // control-plane mutex (RealSocket contract)
	sock   *dht.RealSocket
	addr   netsim.Endpoint
	shards []*shardState

	hbTotal *obs.Counter
	rsTotal *obs.Counter
	live    *obs.Gauge
	flight  *obs.Gauge
}

// poll is the supervision loop's wall-clock cadence.
const poll = 25 * time.Millisecond

// doneGrace is how long after a clean worker exit the coordinator keeps
// waiting for an in-flight fleet_done datagram before declaring the report
// lost and restarting the shard.
const doneGrace = 2 * time.Second

// Run executes a fleet crawl under cfg and returns the merged result.
func Run(cfg Config) (*Result, error) {
	if cfg.Runner == nil {
		return nil, fmt.Errorf("fleet: Config.Runner is required")
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("fleet: worker count %d: want at least 1", cfg.Workers)
	}
	if cfg.HBInterval <= 0 {
		cfg.HBInterval = 500 * time.Millisecond
	}
	if cfg.HBTimeout <= 0 {
		cfg.HBTimeout = 15 * time.Second
	}
	if cfg.MaxRestarts == 0 {
		cfg.MaxRestarts = 2
	}
	if cfg.KillWorker > cfg.Workers {
		return nil, fmt.Errorf("fleet: -kill-worker %d exceeds worker count %d", cfg.KillWorker, cfg.Workers)
	}
	c := &Coordinator{cfg: cfg}
	if reg := cfg.Obs; reg != nil {
		reg.Gauge("fleet_workers").Set(int64(cfg.Workers))
		reg.Gauge("fleet_shards_planned").Set(int64(cfg.Workers))
		c.hbTotal = reg.Counter(obs.WallPrefix + "fleet_heartbeats_total")
		c.rsTotal = reg.Counter(obs.WallPrefix + "fleet_restarts_total")
		c.live = reg.Gauge(obs.WallPrefix + "fleet_workers_live")
		c.flight = reg.Gauge(obs.WallPrefix + "fleet_inflight")
	}
	return c.run()
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		fmt.Fprintf(c.cfg.Log, format+"\n", args...)
	}
}

func (c *Coordinator) run() (*Result, error) {
	start := time.Now()
	sock, addr, err := dht.ListenLoopback(&c.mu)
	if err != nil {
		return nil, err
	}
	c.sock, c.addr = sock, addr
	defer func() {
		c.mu.Lock()
		sock.Close()
		c.mu.Unlock()
		sock.Wait()
	}()
	c.mu.Lock()
	sock.SetHandler(c.handle)
	c.mu.Unlock()

	shards, err := PlanShards(c.cfg.Workers)
	if err != nil {
		return nil, err
	}
	budgets := c.cfg.Budget.Split(c.cfg.Workers)
	c.logf("fleet: %d shards, control on 127.0.0.1:%d, budget %s",
		len(shards), addr.Port, c.cfg.Budget)

	c.shards = make([]*shardState, len(shards))
	c.mu.Lock()
	for i, sh := range shards {
		c.shards[i] = &shardState{spec: WorkerSpec{
			ID:            sh.Index,
			Shard:         sh,
			Seed:          c.cfg.Seed,
			Scale:         c.cfg.Scale,
			Duration:      c.cfg.Duration,
			Loss:          c.cfg.Loss,
			FaultScenario: c.cfg.FaultScenario,
			Budget:        budgets[i],
			ReportTo:      fmt.Sprintf("127.0.0.1:%d", addr.Port),
			HBInterval:    c.cfg.HBInterval,
		}}
		if err := c.launchLocked(c.shards[i]); err != nil {
			c.mu.Unlock()
			c.killAll()
			return nil, err
		}
	}
	c.mu.Unlock()

	if err := c.supervise(); err != nil {
		c.killAll()
		return nil, err
	}
	crawlElapsed := time.Since(start)

	res, err := c.merge()
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	if secs := crawlElapsed.Seconds(); secs > 0 {
		res.HostsPerSec = float64(res.Stats.UniqueIPs) / secs
	}
	if reg := c.cfg.Obs; reg != nil {
		reg.Gauge("fleet_merged_addrs").Set(int64(len(res.Merged)))
		if c.cfg.Budget.Rate > 0 && c.cfg.Duration > 0 {
			// Deterministic: sent counts and the budget are both pure
			// functions of the crawl inputs.
			allowed := c.cfg.Budget.Rate * c.cfg.Duration.Seconds()
			reg.Gauge("fleet_rate_budget_utilization_pct").Set(int64(float64(res.Stats.MessagesSent) / allowed * 100))
		}
		reg.Gauge(obs.WallPrefix + "fleet_merge_millis").Set(res.MergeElapsed.Milliseconds())
	}
	return res, nil
}

// launchLocked starts (or restarts) a shard's worker; c.mu held.
func (c *Coordinator) launchLocked(st *shardState) error {
	st.spec.Attempt++
	st.spec.OutFile = filepath.Join(c.cfg.Dir,
		fmt.Sprintf("shard_%dof%d_try%d.txt", st.spec.Shard.Index, st.spec.Shard.N, st.spec.Attempt))
	st.ready, st.exited, st.exitErr = false, false, nil
	st.launched = time.Now()
	st.lastHB = time.Time{}
	h, err := c.cfg.Runner.Start(st.spec)
	if err != nil {
		return fmt.Errorf("fleet: launching worker %d (%s): %w", st.spec.ID, st.spec.Shard, err)
	}
	st.handle = h
	if c.live != nil {
		c.live.Add(1)
	}
	c.logf("fleet: worker %d (shard %s) launched, attempt %d, pid %d",
		st.spec.ID, st.spec.Shard, st.spec.Attempt, h.Pid())
	go func(h WorkerHandle, st *shardState, attempt int) {
		err := h.Wait()
		c.mu.Lock()
		defer c.mu.Unlock()
		if st.spec.Attempt != attempt { // a newer attempt owns the state
			return
		}
		st.exited, st.exitErr = true, err
		st.exitAt = time.Now()
		if c.live != nil {
			c.live.Add(-1)
		}
	}(h, st, st.spec.Attempt)
	return nil
}

// handle processes worker datagrams; runs under c.mu (RealSocket contract).
func (c *Coordinator) handle(from netsim.Endpoint, payload []byte) {
	d, err := DecodeFrame(payload)
	if err != nil || d.IsAck {
		return
	}
	ack := func() {
		if frame, err := EncodeAck(d.TxID); err == nil {
			c.sock.Send(from, frame)
		}
	}
	switch d.Method {
	case MethodReady:
		var r Ready
		if DecodeArgs(d.Args, &r) != nil {
			return
		}
		if st := c.shardFor(r.Worker); st != nil {
			if !st.ready {
				st.ready = true
				st.lastHB = time.Now()
				c.logf("fleet: worker %d ready (shard %s, pid %d)", r.Worker, r.Shard, r.PID)
			}
			ack()
		}
	case MethodHB:
		var hb Heartbeat
		if DecodeArgs(d.Args, &hb) != nil {
			return
		}
		if st := c.shardFor(hb.Worker); st != nil {
			now := time.Now()
			if st.hbCount == 0 {
				st.firstHB = now
			}
			st.hbCount++
			st.lastHB = now
			st.lastSnap = hb
			if c.hbTotal != nil {
				c.hbTotal.Inc()
			}
			if c.flight != nil {
				var total int64
				for _, s := range c.shards {
					total += s.lastSnap.InFlight
				}
				c.flight.Set(total)
			}
		}
	case MethodDone:
		var dn Done
		if DecodeArgs(d.Args, &dn) != nil {
			return
		}
		if st := c.shardFor(dn.Worker); st != nil {
			if st.done == nil {
				st.done = &dn
				c.logf("fleet: worker %d done (shard %s): %d NATed, %d msgs sent",
					dn.Worker, dn.Shard, dn.Stats.NATedIPs, dn.Stats.MessagesSent)
			}
			ack() // re-ack duplicates: the worker retries until heard
		}
	}
}

func (c *Coordinator) shardFor(worker int) *shardState {
	if worker < 1 || worker > len(c.shards) {
		return nil
	}
	return c.shards[worker-1]
}

// supervise drives the wall-clock loop: chaos kills, crash and hang
// detection, bounded restart-and-reassign, and completion.
func (c *Coordinator) supervise() error {
	for {
		time.Sleep(poll)
		c.mu.Lock()
		now := time.Now()
		complete := true
		var failure error
		for _, st := range c.shards {
			if st.done != nil && st.exited {
				continue
			}
			complete = false

			// Chaos hook: kill the target worker once after its first
			// heartbeat (the crawl is demonstrably under way).
			if c.cfg.KillWorker == st.spec.ID && !st.killed && st.done == nil &&
				st.hbCount > 0 && now.Sub(st.firstHB) >= c.cfg.KillAfter {
				st.killed = true
				c.logf("fleet: chaos: killing worker %d (shard %s) mid-crawl", st.spec.ID, st.spec.Shard)
				_ = st.handle.Kill()
				continue
			}

			switch {
			case st.exited && st.done == nil && st.exitErr != nil:
				failure = c.restartLocked(st, fmt.Sprintf("exited: %v", st.exitErr))
			case st.exited && st.done == nil && now.Sub(st.exitAt) > doneGrace:
				failure = c.restartLocked(st, "exited cleanly but its final report never arrived")
			case !st.exited && st.done == nil && c.stale(st, now):
				c.logf("fleet: worker %d (shard %s) heartbeat stale, killing", st.spec.ID, st.spec.Shard)
				_ = st.handle.Kill()
				// The exit path restarts it.
			}
			if failure != nil {
				break
			}
		}
		c.mu.Unlock()
		if failure != nil {
			return failure
		}
		if complete {
			return nil
		}
	}
}

func (c *Coordinator) stale(st *shardState, now time.Time) bool {
	last := st.lastHB
	if last.IsZero() {
		last = st.launched
	}
	return now.Sub(last) > c.cfg.HBTimeout
}

// restartLocked relaunches a shard's worker, reassigning the shard and its
// budget share to the replacement; c.mu held. Returns an error once the
// restart budget is exhausted.
func (c *Coordinator) restartLocked(st *shardState, why string) error {
	if st.restarts >= c.cfg.MaxRestarts {
		return fmt.Errorf("fleet: worker %d (shard %s) failed %d times (last: %s); restart budget exhausted",
			st.spec.ID, st.spec.Shard, st.restarts+1, why)
	}
	st.restarts++
	if c.rsTotal != nil {
		c.rsTotal.Inc()
	}
	c.logf("fleet: worker %d (shard %s) %s; restarting (attempt %d/%d)",
		st.spec.ID, st.spec.Shard, why, st.spec.Attempt+1, c.cfg.MaxRestarts+1)
	return c.launchLocked(st)
}

func (c *Coordinator) killAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, st := range c.shards {
		if st.handle != nil && !st.exited {
			_ = st.handle.Kill()
		}
	}
}

// merge folds the shard reports into the fleet-wide result: observations
// through crawler.MergeObservations (max users per address), statistics
// through crawler.MergeStats with the union counts corrected for the one
// deliberate overlap (every shard may observe the bootstrap).
func (c *Coordinator) merge() (*Result, error) {
	mergeStart := time.Now()
	res := &Result{}
	var groups [][]crawler.NATObservation
	var stats []crawler.Stats
	uniqueIPs, uniqueIDs, multiPort, sawBootstrap := 0, 0, 0, 0
	c.mu.Lock()
	states := c.shards
	c.mu.Unlock()
	for _, st := range states {
		dn := st.done
		detected, err := readNATedFile(dn.OutFile)
		if err != nil {
			return nil, fmt.Errorf("fleet: reading worker %d observations: %w", st.spec.ID, err)
		}
		group := make([]crawler.NATObservation, 0, len(detected))
		for a, users := range detected {
			group = append(group, crawler.NATObservation{Addr: a, Users: users})
		}
		groups = append(groups, group)
		ws := dn.Stats.Stats()
		stats = append(stats, ws)
		uniqueIPs += ws.UniqueIPs
		uniqueIDs += ws.UniqueNodeIDs
		multiPort += ws.MultiPortIPs
		if dn.SawBootstrap != 0 {
			sawBootstrap++
		}
		res.TruePositives += int(dn.TruePositives)
		res.Restarts += st.restarts
		res.PerWorker = append(res.PerWorker, WorkerStatus{
			Worker:        st.spec.ID,
			Shard:         st.spec.Shard.String(),
			Attempts:      st.spec.Attempt,
			Restarts:      st.restarts,
			Killed:        st.killed,
			OutFile:       dn.OutFile,
			Stats:         ws,
			TruePositives: int(dn.TruePositives),
			SawBootstrap:  dn.SawBootstrap != 0,
			Heartbeats:    st.hbCount,
		})
	}
	sort.Slice(res.PerWorker, func(i, j int) bool { return res.PerWorker[i].Worker < res.PerWorker[j].Worker })

	res.Merged = crawler.MergeObservations(groups...)
	res.Stats = crawler.MergeStats(stats...)
	// The shards partition the address space, so per-shard unique sets are
	// disjoint except for the bootstrap, which every shard's scope admits:
	// subtract the extra sightings of its one IP and one node ID.
	overlap := 0
	if sawBootstrap > 1 {
		overlap = sawBootstrap - 1
	}
	res.Stats.UniqueIPs = uniqueIPs - overlap
	res.Stats.UniqueNodeIDs = uniqueIDs - overlap
	res.Stats.MultiPortIPs = multiPort
	res.Stats.NATedIPs = len(res.Merged)

	if c.cfg.OutFile != "" {
		detected := make(map[iputil.Addr]int, len(res.Merged))
		for _, o := range res.Merged {
			detected[o.Addr] = o.Users
		}
		if err := WriteOut(c.cfg.OutFile, detected, c.cfg.Log); err != nil {
			return nil, err
		}
	}
	res.MergeElapsed = time.Since(mergeStart)
	return res, nil
}

// readNATedFile loads one shard observation file (addr<TAB>users).
func readNATedFile(path string) (map[iputil.Addr]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return blocklist.ParseNATedList(f)
}
