package fleet

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"

	"github.com/reuseblock/reuseblock/internal/faults"
)

// WorkerSpec is everything needed to run one shard crawl as a fleet worker:
// the deterministic crawl inputs plus the control-plane wiring.
type WorkerSpec struct {
	// ID is the worker's fleet-wide number (stable across restarts of the
	// same shard: worker I owns shard I/N).
	ID int
	// Attempt distinguishes restarts of the same shard (1 = first launch).
	Attempt int
	Shard   ShardSpec

	Seed     int64
	Scale    float64
	Duration time.Duration
	Loss     float64
	// FaultScenario is the scenario name ("" for fault-free); carried by
	// name so it crosses the process boundary as a flag.
	FaultScenario string
	Budget        Budget

	// OutFile is where the worker writes its shard observations; per
	// attempt, so a killed worker's partial file can never shadow its
	// replacement's output.
	OutFile string
	// ReportTo is the coordinator control address ("127.0.0.1:PORT").
	ReportTo   string
	HBInterval time.Duration
}

// WorkerHandle supervises one launched worker.
type WorkerHandle interface {
	// Wait blocks until the worker exits; nil means a clean exit.
	Wait() error
	// Kill terminates the worker abruptly (crash semantics: no fleet_done,
	// no out file flush — what the supervisor must survive).
	Kill() error
	// Pid returns the worker's OS process ID, or 0 for in-process workers.
	Pid() int
}

// Runner launches workers. ProcRunner runs real blcrawl processes over
// loopback UDP (production shape); LocalRunner runs the identical crawl
// in-process (single-binary mode and deterministic tests). Both speak the
// same control protocol, so the coordinator cannot tell them apart.
type Runner interface {
	Start(spec WorkerSpec) (WorkerHandle, error)
}

// ProcRunner launches each worker as a real `blcrawl` process.
type ProcRunner struct {
	// Binary is the blcrawl executable path.
	Binary string
	// LogDir, when non-empty, receives per-worker stdout/stderr capture
	// (worker_<ID>_try<Attempt>.log); otherwise output is discarded.
	LogDir string
}

type procHandle struct {
	cmd *exec.Cmd
	log *os.File
	err chan error
}

// Start implements Runner.
func (r *ProcRunner) Start(spec WorkerSpec) (WorkerHandle, error) {
	args := []string{
		"-seed", strconv.FormatInt(spec.Seed, 10),
		"-scale", strconv.FormatFloat(spec.Scale, 'g', -1, 64),
		"-duration", spec.Duration.String(),
		"-loss", strconv.FormatFloat(spec.Loss, 'g', -1, 64),
		"-shard", spec.Shard.String(),
		"-out", spec.OutFile,
		"-report-to", spec.ReportTo,
		"-worker", strconv.Itoa(spec.ID),
		"-hb-interval", spec.HBInterval.String(),
	}
	if spec.FaultScenario != "" {
		args = append(args, "-faults", spec.FaultScenario)
	}
	if spec.Budget.Rate > 0 {
		args = append(args, "-rate", strconv.FormatFloat(spec.Budget.Rate, 'g', -1, 64))
		if spec.Budget.Burst > 0 {
			args = append(args, "-burst", strconv.Itoa(spec.Budget.Burst))
		}
	}
	if spec.Budget.MaxInflight > 0 {
		args = append(args, "-max-inflight", strconv.Itoa(spec.Budget.MaxInflight))
	}
	cmd := exec.Command(r.Binary, args...)
	h := &procHandle{cmd: cmd, err: make(chan error, 1)}
	var sink io.Writer = io.Discard
	if r.LogDir != "" {
		f, err := os.Create(filepath.Join(r.LogDir, fmt.Sprintf("worker_%d_try%d.log", spec.ID, spec.Attempt)))
		if err != nil {
			return nil, err
		}
		h.log = f
		sink = f
	}
	cmd.Stdout = sink
	cmd.Stderr = sink
	if err := cmd.Start(); err != nil {
		if h.log != nil {
			h.log.Close()
		}
		return nil, err
	}
	go func() {
		err := cmd.Wait()
		if h.log != nil {
			h.log.Close()
		}
		h.err <- err
	}()
	return h, nil
}

func (h *procHandle) Wait() error { return <-h.err }
func (h *procHandle) Kill() error { return h.cmd.Process.Kill() }
func (h *procHandle) Pid() int    { return h.cmd.Process.Pid }

// LocalRunner runs workers as in-process goroutines around the same
// RunCrawl + Agent code path the blcrawl worker mode uses.
type LocalRunner struct{}

type localHandle struct {
	cancel chan struct{}
	done   chan struct{}
	err    error
}

// Start implements Runner.
func (LocalRunner) Start(spec WorkerSpec) (WorkerHandle, error) {
	h := &localHandle{cancel: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(h.done)
		h.err = RunWorker(spec, h.cancel, io.Discard)
	}()
	return h, nil
}

func (h *localHandle) Wait() error {
	<-h.done
	return h.err
}

func (h *localHandle) Kill() error {
	select {
	case <-h.cancel:
	default:
		close(h.cancel)
	}
	return nil
}

func (h *localHandle) Pid() int { return 0 }

// RunWorker executes one fleet worker end to end: dial the coordinator,
// announce readiness, run the shard crawl publishing heartbeat snapshots,
// write the shard observations, and deliver fleet_done. A cancelled crawl
// (worker killed) returns an error without reporting done or writing the
// out file — crash semantics, identical to a killed process.
func RunWorker(spec WorkerSpec, cancel <-chan struct{}, stderr io.Writer) error {
	scenario, err := faults.Lookup(spec.FaultScenario)
	if err != nil {
		return err
	}
	var agent *Agent
	if spec.ReportTo != "" {
		agent, err = DialAgent(spec.ReportTo, spec.ID, spec.Shard, spec.HBInterval)
		if err != nil {
			return err
		}
		defer agent.Close()
	}
	job := CrawlJob{
		Seed:     spec.Seed,
		Scale:    spec.Scale,
		Duration: spec.Duration,
		Loss:     spec.Loss,
		Scenario: scenario,
		Shard:    spec.Shard,
		Budget:   spec.Budget,
		Stderr:   stderr,
		Chunk:    HeartbeatChunk(spec.Duration),
		Cancel:   cancel,
	}
	if agent != nil {
		job.Progress = agent.Publish
	}
	res, err := RunCrawl(job)
	if err != nil {
		return err
	}
	if res.Cancelled {
		return fmt.Errorf("fleet: worker %d cancelled mid-crawl", spec.ID)
	}
	if spec.OutFile != "" {
		if err := WriteOut(spec.OutFile, res.Detected, stderr); err != nil {
			return err
		}
	}
	if agent != nil {
		d := Done{
			OutFile:       spec.OutFile,
			Stats:         ToWireStats(res.Stats),
			TruePositives: int64(res.TruePositives),
		}
		if res.SawBootstrap {
			d.SawBootstrap = 1
		}
		if err := agent.Done(d); err != nil {
			return err
		}
	}
	return nil
}

// HeartbeatChunk picks the simulated-time slice between progress snapshots:
// fine enough that heartbeats track the crawl, coarse enough that chunking
// overhead stays negligible. Chunking never changes crawl output (RunFor is
// additive), so the choice is free.
func HeartbeatChunk(d time.Duration) time.Duration {
	chunk := d / 64
	if chunk < time.Minute {
		chunk = time.Minute
	}
	return chunk
}
