package fleet

import (
	"fmt"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reuseblock/reuseblock/internal/dht"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/netsim"
)

// ParseControlAddr parses a coordinator control address ("HOST:PORT", IPv4)
// into the endpoint form the control socket sends to.
func ParseControlAddr(s string) (netsim.Endpoint, error) {
	host, portStr, err := net.SplitHostPort(s)
	if err != nil {
		return netsim.Endpoint{}, fmt.Errorf("invalid control address %q: %v", s, err)
	}
	addr, err := iputil.ParseAddr(host)
	if err != nil {
		return netsim.Endpoint{}, fmt.Errorf("invalid control address %q: %v", s, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port < 1 || port > 65535 {
		return netsim.Endpoint{}, fmt.Errorf("invalid control address %q: bad port", s)
	}
	return netsim.Endpoint{Addr: addr, Port: uint16(port)}, nil
}

// Agent is the worker side of the fleet control plane. It owns a loopback
// UDP socket, announces the worker with fleet_ready, streams fleet_hb
// progress heartbeats from a wall-clock ticker, and delivers the final
// fleet_done with retry-until-ack.
//
// The crawl itself is single-threaded on the simulation loop; the agent
// decouples it from wall time by reading atomically published Snapshots, so
// heartbeat cadence never perturbs the deterministic crawl.
type Agent struct {
	mu     sync.Mutex
	sock   *dht.RealSocket
	coord  netsim.Endpoint
	worker int
	shard  ShardSpec

	snap  atomic.Value // Snapshot
	txSeq atomic.Int64
	acks  map[string]chan struct{} // guarded by mu

	hbStop chan struct{}
	hbOnce sync.Once
	wg     sync.WaitGroup
}

// ackAttempts / ackInterval govern retry-until-ack sends (ready and done).
const (
	ackAttempts = 5
	ackInterval = 200 * time.Millisecond
)

// DialAgent connects a worker to the coordinator at coordAddr and announces
// it with fleet_ready (retried until acked). hbInterval <= 0 disables the
// heartbeat ticker (ready/done still flow).
func DialAgent(coordAddr string, worker int, shard ShardSpec, hbInterval time.Duration) (*Agent, error) {
	coord, err := ParseControlAddr(coordAddr)
	if err != nil {
		return nil, err
	}
	a := &Agent{
		coord:  coord,
		worker: worker,
		shard:  shard,
		acks:   make(map[string]chan struct{}),
		hbStop: make(chan struct{}),
	}
	a.snap.Store(Snapshot{})
	sock, _, err := dht.ListenLoopback(&a.mu)
	if err != nil {
		return nil, err
	}
	a.sock = sock
	a.mu.Lock()
	sock.SetHandler(a.handle)
	a.mu.Unlock()

	if err := a.sendAcked(MethodReady, Ready{Worker: worker, Shard: shard.String(), PID: os.Getpid()}); err != nil {
		a.Close()
		return nil, err
	}
	if hbInterval > 0 {
		a.wg.Add(1)
		go a.heartbeatLoop(hbInterval)
	}
	return a, nil
}

// handle processes coordinator datagrams; only acks flow this way. It runs
// under a.mu (RealSocket contract).
func (a *Agent) handle(_ netsim.Endpoint, payload []byte) {
	d, err := DecodeFrame(payload)
	if err != nil || !d.IsAck {
		return
	}
	if ch, ok := a.acks[d.TxID]; ok {
		delete(a.acks, d.TxID)
		close(ch)
	}
}

// Publish records the crawl's latest progress snapshot for the heartbeat
// ticker. Safe to call from the simulation loop; never blocks.
func (a *Agent) Publish(s Snapshot) { a.snap.Store(s) }

func (a *Agent) nextTx() string {
	return fmt.Sprintf("w%d-%d", a.worker, a.txSeq.Add(1))
}

// send fires one control query without waiting for an ack.
func (a *Agent) send(method string, payload any) error {
	frame, err := EncodeQuery(a.nextTx(), method, payload)
	if err != nil {
		return err
	}
	a.sock.Send(a.coord, frame)
	return nil
}

// sendAcked sends a control query and waits for the coordinator's ack,
// retrying a few times; the control plane is loopback UDP, so persistent
// loss means the coordinator is gone and the worker reports the failure.
func (a *Agent) sendAcked(method string, payload any) error {
	tx := a.nextTx()
	frame, err := EncodeQuery(tx, method, payload)
	if err != nil {
		return err
	}
	ch := make(chan struct{})
	a.mu.Lock()
	a.acks[tx] = ch
	a.mu.Unlock()
	for attempt := 0; attempt < ackAttempts; attempt++ {
		a.sock.Send(a.coord, frame)
		select {
		case <-ch:
			return nil
		case <-time.After(ackInterval):
		}
	}
	a.mu.Lock()
	delete(a.acks, tx)
	a.mu.Unlock()
	return fmt.Errorf("fleet: %s to %s unacked after %d attempts", method, a.coord, ackAttempts)
}

func (a *Agent) heartbeatLoop(interval time.Duration) {
	defer a.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-a.hbStop:
			return
		case <-t.C:
			s := a.snap.Load().(Snapshot)
			hb := Heartbeat{
				Worker:   a.worker,
				Sent:     s.Sent,
				Received: s.Received,
				InFlight: s.InFlight,
				NATed:    s.NATed,
			}
			if s.Done {
				hb.Done = 1
			}
			_ = a.send(MethodHB, hb) // fire-and-forget: the next one supersedes it
		}
	}
}

// Done stops the heartbeat ticker and delivers the worker's final report,
// retrying until the coordinator acknowledges it.
func (a *Agent) Done(d Done) error {
	a.stopHB()
	d.Worker = a.worker
	d.Shard = a.shard.String()
	return a.sendAcked(MethodDone, d)
}

func (a *Agent) stopHB() {
	a.hbOnce.Do(func() { close(a.hbStop) })
	a.wg.Wait()
}

// Close releases the control socket (stopping heartbeats first).
func (a *Agent) Close() {
	a.stopHB()
	a.mu.Lock()
	a.sock.Close()
	a.mu.Unlock()
	a.sock.Wait()
}
