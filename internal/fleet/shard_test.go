package fleet

import (
	"math/rand"
	"testing"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

func TestParseShard(t *testing.T) {
	cases := []struct {
		in      string
		want    ShardSpec
		wantErr bool
	}{
		{"", ShardSpec{1, 1}, false},
		{"1/1", ShardSpec{1, 1}, false},
		{"1/4", ShardSpec{1, 4}, false},
		{"4/4", ShardSpec{4, 4}, false},
		{"0/4", ShardSpec{}, true},
		{"5/4", ShardSpec{}, true},
		{"-1/4", ShardSpec{}, true},
		{"1/0", ShardSpec{}, true},
		{"1/-2", ShardSpec{}, true},
		{"nonsense", ShardSpec{}, true},
		{"1", ShardSpec{}, true},
		{"/", ShardSpec{}, true},
		{"1/2/3", ShardSpec{}, true},
	}
	for _, c := range cases {
		got, err := ParseShard(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseShard(%q): err = %v, wantErr = %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseShard(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseShardRoundTrip(t *testing.T) {
	for n := 1; n <= 9; n++ {
		for i := 1; i <= n; i++ {
			spec := ShardSpec{Index: i, N: n}
			back, err := ParseShard(spec.String())
			if err != nil {
				t.Fatalf("ParseShard(%q): %v", spec.String(), err)
			}
			if back != spec {
				t.Fatalf("round trip %+v -> %q -> %+v", spec, spec.String(), back)
			}
		}
	}
}

// TestShardPartitionProperty pins the planner's load-bearing invariant: for
// any N, the shard scopes parsed back from their wire form partition the
// crawl scope exactly — every in-scope address lands in exactly one shard
// (no hole, no overlap), except the bootstrap, which deliberately appears in
// every shard's scope.
func TestShardPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	scopeLo := iputil.MustParseAddr("60.0.0.0")
	scopeHi := iputil.MustParseAddr("60.0.255.255")
	scope := func(a iputil.Addr) bool { return a >= scopeLo && a <= scopeHi }
	bootstrap := iputil.MustParseAddr("60.0.7.1")

	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 16} {
		shards, err := PlanShards(n)
		if err != nil {
			t.Fatalf("PlanShards(%d): %v", n, err)
		}
		if len(shards) != n {
			t.Fatalf("PlanShards(%d) returned %d shards", n, len(shards))
		}
		// The planner's specs must survive the wire: parse each back from
		// its -shard flag form before deriving the scope, exactly the path
		// a worker process takes.
		scopes := make([]func(iputil.Addr) bool, n)
		for i, sh := range shards {
			parsed, err := ParseShard(sh.String())
			if err != nil {
				t.Fatalf("ParseShard(%q): %v", sh.String(), err)
			}
			if parsed != sh {
				t.Fatalf("shard %d: wire round trip changed %+v -> %+v", i, sh, parsed)
			}
			scopes[i] = parsed.Scope(scope, bootstrap)
		}

		// 2k random in-scope addresses plus the boundary cases.
		probe := []iputil.Addr{scopeLo, scopeHi, bootstrap, bootstrap + 1, bootstrap - 1}
		for len(probe) < 2005 {
			off := rng.Intn(int(scopeHi - scopeLo + 1))
			probe = append(probe, scopeLo+iputil.Addr(off))
		}
		for _, a := range probe {
			owners := 0
			for _, cover := range scopes {
				if cover(a) {
					owners++
				}
			}
			switch {
			case a == bootstrap:
				if owners != n {
					t.Fatalf("N=%d: bootstrap %s in %d shards, want all %d", n, a, owners, n)
				}
			default:
				if owners != 1 {
					t.Fatalf("N=%d: address %s in %d shards, want exactly 1", n, a, owners)
				}
			}
		}

		// Out-of-scope addresses belong to no shard.
		for _, a := range []iputil.Addr{scopeLo - 1, scopeHi + 1, iputil.MustParseAddr("10.0.0.1")} {
			for i, cover := range scopes {
				if cover(a) {
					t.Fatalf("N=%d: out-of-scope %s admitted by shard %d", n, a, i+1)
				}
			}
		}
	}
}

func TestShardScopeWholeIsIdentity(t *testing.T) {
	scope := func(a iputil.Addr) bool { return a%2 == 0 }
	sh := ShardSpec{Index: 1, N: 1}
	got := sh.Scope(scope, iputil.MustParseAddr("1.2.3.4"))
	for _, a := range []iputil.Addr{0, 1, 2, 3, 100, 101} {
		if got(a) != scope(a) {
			t.Fatalf("1/1 shard scope diverged from base scope at %v", a)
		}
	}
}
