package fleet

import (
	"fmt"
	"io"
	"os"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/core"
	"github.com/reuseblock/reuseblock/internal/crawler"
	"github.com/reuseblock/reuseblock/internal/dht"
	"github.com/reuseblock/reuseblock/internal/faults"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/netsim"
)

// NATedListHeader is the comment header every crawl observation file
// carries, written by blcrawl, fleet workers, and the coordinator's merged
// output alike — identical headers are what make fleet(1) output
// byte-identical to a plain blcrawl run.
const NATedListHeader = "NATed addresses detected by blcrawl (addr<TAB>users lower bound)"

// CrawlJob describes one shard crawl: the deterministic inputs (seed,
// scale, duration, loss, faults, shard, budget) that fully define the
// crawl's output, plus process-local plumbing (logs, progress callbacks,
// cancellation) that must not influence it.
type CrawlJob struct {
	Seed     int64
	Scale    float64
	Duration time.Duration
	Loss     float64
	Scenario *faults.Scenario
	Shard    ShardSpec
	// Budget is this worker's share of the fleet crawl budget; the zero
	// value leaves the crawl unlimited (plain blcrawl behaviour).
	Budget Budget

	// EventLog, when non-nil, receives the crawler message log.
	EventLog io.Writer
	// Stderr receives the human progress lines ("world: ...", shard
	// banner); nil discards them.
	Stderr io.Writer
	// Chunk splits the simulated run into slices of this length; between
	// slices Progress is invoked and Cancel is polled. Zero runs the whole
	// duration in one slice. Chunking is output-neutral: the simulator's
	// RunFor(a); RunFor(b) is identical to RunFor(a+b).
	Chunk time.Duration
	// Progress, when non-nil, observes a statistics snapshot between
	// chunks (and once after the crawl stops, with Done set). It runs on
	// the simulation loop; implementations must not block.
	Progress func(Snapshot)
	// Cancel, when non-nil and closed, stops the crawl at the next chunk
	// boundary; the result carries what was observed so far.
	Cancel <-chan struct{}
}

// Snapshot is the progress view Progress receives — the fields fleet
// heartbeats carry.
type Snapshot struct {
	Sent     int64
	Received int64
	InFlight int64
	NATed    int64
	Done     bool
}

// CrawlResult is everything a shard crawl produces.
type CrawlResult struct {
	Stats        crawler.Stats
	Observations []crawler.NATObservation
	// Detected maps each NATed address to its simultaneous-user lower
	// bound — the addr<TAB>users file content.
	Detected map[iputil.Addr]int
	// TruePositives counts detected addresses that are real NAT gateways
	// in the generated world's ground truth.
	TruePositives int
	// SawBootstrap reports whether the bootstrap address was observed;
	// the merge uses it to de-overlap union counts (the bootstrap is in
	// every shard's scope).
	SawBootstrap bool
	// FaultStats is the injector's account of what the scenario did to
	// the swarm; nil when no scenario ran.
	FaultStats *faults.Stats
	// Cancelled reports the crawl was stopped early via Cancel.
	Cancelled bool
}

// RunCrawl executes one shard crawl on the deterministic simulator. It is
// the factored core of `blcrawl`'s simulated mode, shared by the blcrawl
// command, fleet worker mode, and the coordinator's in-process runner: one
// implementation, so a worker crawl is the same crawl wherever it runs.
func RunCrawl(job CrawlJob) (CrawlResult, error) {
	var res CrawlResult
	stderr := job.Stderr
	if stderr == nil {
		stderr = io.Discard
	}

	wp := blgen.DefaultParams(job.Seed)
	wp.Scale = job.Scale
	w := blgen.Generate(wp)
	fmt.Fprintf(stderr, "world: %d BT users, %d NAT gateways\n", len(w.BTUsers), len(w.NATs))

	scope := w.BlocklistedSpace()
	swarm, err := core.BuildSwarm(w, core.SwarmConfig{
		Loss:         job.Loss,
		Seed:         job.Seed,
		ChurnHorizon: job.Duration,
		Faults:       job.Scenario,
	}, scope.Covers)
	if err != nil {
		return res, err
	}
	sock, err := swarm.Net.Listen(netsim.Endpoint{Addr: iputil.MustParseAddr("198.18.0.1"), Port: 9999})
	if err != nil {
		return res, err
	}
	cover := scope.Covers
	if !job.Shard.Whole() {
		// Restrict probing to this instance's address shard. The bootstrap
		// stays reachable from every shard, or a scope-restricted crawler
		// could never take its first step.
		cover = job.Shard.Scope(scope.Covers, swarm.Bootstrap.Addr)
		fmt.Fprintf(stderr, "crawling shard %d/%d of the address space\n", job.Shard.Index-1, job.Shard.N)
	}
	ccfg := crawler.Config{
		Bootstrap:   []netsim.Endpoint{swarm.Bootstrap},
		Scope:       cover,
		Seed:        job.Seed,
		Limiter:     NewTokenBucket(job.Budget.Rate, job.Budget.Burst),
		MaxInflight: job.Budget.MaxInflight,
	}
	if job.Scenario != nil {
		// Under faults the crawler fights back: retries with backoff and
		// eviction of persistently dead endpoints.
		ccfg.MaxRetries = 2
		ccfg.RetryBase = 2 * time.Second
		ccfg.EvictAfter = 4
	}
	ccfg.EventLog = job.EventLog

	c := crawler.New(sock, dht.SimClock(swarm.Clock), ccfg)
	swarm.Clock.RunFor(time.Minute)
	c.Start()

	snapshot := func(done bool) Snapshot {
		st := c.Stats()
		return Snapshot{
			Sent:     st.MessagesSent,
			Received: st.MessagesReceived,
			InFlight: int64(c.InFlight()),
			NATed:    int64(st.NATedIPs),
			Done:     done,
		}
	}
	remaining := job.Duration
	chunk := job.Chunk
	if chunk <= 0 {
		chunk = job.Duration
	}
	for remaining > 0 {
		select {
		case <-job.Cancel:
			res.Cancelled = true
			remaining = 0
		default:
			step := chunk
			if step > remaining {
				step = remaining
			}
			swarm.Clock.RunFor(step)
			remaining -= step
			if remaining > 0 && job.Progress != nil {
				job.Progress(snapshot(false))
			}
		}
	}
	c.Stop()
	if job.Progress != nil {
		job.Progress(snapshot(true))
	}

	res.Stats = c.Stats()
	res.Observations = c.NATed()
	res.Detected = make(map[iputil.Addr]int, len(res.Observations))
	for _, o := range res.Observations {
		res.Detected[o.Addr] = o.Users
		if _, ok := w.NATByIP[o.Addr]; ok {
			res.TruePositives++
		}
	}
	res.SawBootstrap = c.ObservedIPs().Contains(swarm.Bootstrap.Addr)
	if swarm.Injector != nil {
		fs := swarm.Injector.Stats()
		res.FaultStats = &fs
	}
	return res, nil
}

// WriteOut writes a detected-address file in the crawl observation format
// (sorted addr<TAB>users with the canonical header), reporting to stderr
// the way blcrawl does. It is shared by blcrawl, fleet workers, and the
// coordinator's merge step.
func WriteOut(path string, detected map[iputil.Addr]int, stderr io.Writer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := blocklist.WriteNATedList(f, detected, NATedListHeader); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if stderr != nil {
		fmt.Fprintf(stderr, "wrote %d addresses to %s\n", len(detected), path)
	}
	return nil
}
