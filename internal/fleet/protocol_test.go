package fleet

import (
	"reflect"
	"testing"

	"github.com/reuseblock/reuseblock/internal/crawler"
)

func TestProtocolReadyRoundTrip(t *testing.T) {
	frame, err := EncodeQuery("t1", MethodReady, Ready{Worker: 3, Shard: "3/4", PID: 1234})
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if d.IsAck || d.Method != MethodReady || d.TxID != "t1" {
		t.Fatalf("decoded %+v", d)
	}
	var r Ready
	if err := DecodeArgs(d.Args, &r); err != nil {
		t.Fatal(err)
	}
	if r != (Ready{Worker: 3, Shard: "3/4", PID: 1234}) {
		t.Fatalf("ready round trip: %+v", r)
	}
}

func TestProtocolHeartbeatRoundTrip(t *testing.T) {
	in := Heartbeat{Worker: 2, Sent: 100, Received: 80, InFlight: 7, NATed: 5, Done: 1}
	frame, err := EncodeQuery("t2", MethodHB, in)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	var hb Heartbeat
	if err := DecodeArgs(d.Args, &hb); err != nil {
		t.Fatal(err)
	}
	if hb != in {
		t.Fatalf("heartbeat round trip: %+v != %+v", hb, in)
	}
}

func TestProtocolDoneRoundTripPreservesStats(t *testing.T) {
	st := crawler.Stats{
		GetNodesSent: 100, GetNodesReplies: 70, PingsSent: 50, PingReplies: 40,
		Timeouts: 30, Retries: 4, LateReplies: 2, Evicted: 1,
		UniqueIPs: 60, UniqueNodeIDs: 90, NATedIPs: 12, MultiPortIPs: 14,
		ScopeSuppressed: 5, SimultaneousMax: 9, PingRoundsRun: 20, SweepsRun: 8,
		MessagesSent: 150, MessagesReceived: 110,
		ResponseRate: 110.0 / 150.0,
	}
	in := Done{Worker: 1, Shard: "1/2", OutFile: "/tmp/x.txt", Stats: ToWireStats(st), SawBootstrap: 1, TruePositives: 11}
	frame, err := EncodeQuery("t3", MethodDone, in)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	var dn Done
	if err := DecodeArgs(d.Args, &dn); err != nil {
		t.Fatal(err)
	}
	if dn.Worker != 1 || dn.Shard != "1/2" || dn.OutFile != "/tmp/x.txt" || dn.SawBootstrap != 1 || dn.TruePositives != 11 {
		t.Fatalf("done round trip: %+v", dn)
	}
	// The stats projection must reconstruct crawler.Stats exactly,
	// including the recomputed ResponseRate.
	if got := dn.Stats.Stats(); !reflect.DeepEqual(got, st) {
		t.Fatalf("stats round trip:\n got %+v\nwant %+v", got, st)
	}
}

func TestProtocolAck(t *testing.T) {
	frame, err := EncodeAck("t9")
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsAck || d.TxID != "t9" {
		t.Fatalf("ack decoded as %+v", d)
	}
}

func TestProtocolRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		[]byte("not bencode"),
		[]byte("i42e"),                         // not a dict
		[]byte("d1:t2:t11:y1:qe"),              // query without method
		[]byte("d1:t2:t11:y1:q1:q4:ping4:argsdee"), // unknown method
		[]byte("d1:t2:t11:y1:xe"),              // unknown kind
	}
	for _, b := range bad {
		if _, err := DecodeFrame(b); err == nil {
			t.Errorf("DecodeFrame(%q) accepted garbage", b)
		}
	}
}

// TestProtocolQueryMissingArgs: a known method without an args dict is
// rejected rather than decoded into zero values.
func TestProtocolQueryMissingArgs(t *testing.T) {
	if _, err := DecodeFrame([]byte("d1:t2:t11:y1:q1:q8:fleet_hbe")); err == nil {
		t.Fatal("query without args accepted")
	}
}
