package fleet

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/crawler"
	"github.com/reuseblock/reuseblock/internal/faults"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/obs"
)

// Test world: small enough that a full shard crawl runs in ~200ms, large
// enough to detect dozens of NATed addresses.
const (
	testSeed     = int64(1)
	testScale    = 0.05
	testDuration = 8 * time.Hour
	testLoss     = 0.28
)

func testConfig(t *testing.T, workers int) Config {
	t.Helper()
	dir := t.TempDir()
	return Config{
		Workers:    workers,
		Seed:       testSeed,
		Scale:      testScale,
		Duration:   testDuration,
		Loss:       testLoss,
		Runner:     LocalRunner{},
		Dir:        dir,
		OutFile:    filepath.Join(dir, "merged.txt"),
		HBInterval: 25 * time.Millisecond,
	}
}

// baselineMerged runs each shard crawl independently — no coordinator, no
// control plane, no chunking — writes the shard files, merges them the way
// the coordinator does, and returns the merged file's bytes. This is the
// equivalence oracle: the fleet machinery must be invisible in the output.
func baselineMerged(t *testing.T, workers int, scenarioName string) []byte {
	t.Helper()
	scenario, err := faults.Lookup(scenarioName)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	shards, err := PlanShards(workers)
	if err != nil {
		t.Fatal(err)
	}
	var groups [][]crawler.NATObservation
	for _, sh := range shards {
		res, err := RunCrawl(CrawlJob{
			Seed: testSeed, Scale: testScale, Duration: testDuration, Loss: testLoss,
			Scenario: scenario, Shard: sh,
		})
		if err != nil {
			t.Fatalf("shard %s: %v", sh, err)
		}
		path := filepath.Join(dir, strings.ReplaceAll(sh.String(), "/", "of")+".txt")
		if err := WriteOut(path, res.Detected, nil); err != nil {
			t.Fatal(err)
		}
		detected, err := readNATedFile(path)
		if err != nil {
			t.Fatal(err)
		}
		group := make([]crawler.NATObservation, 0, len(detected))
		for a, users := range detected {
			group = append(group, crawler.NATObservation{Addr: a, Users: users})
		}
		groups = append(groups, group)
	}
	merged := crawler.MergeObservations(groups...)
	detected := make(map[iputil.Addr]int, len(merged))
	for _, o := range merged {
		detected[o.Addr] = o.Users
	}
	out := filepath.Join(dir, "baseline_merged.txt")
	if err := WriteOut(out, detected, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFleetEquivalence is the headline invariant: for N ∈ {1, 2, 4}, the
// coordinator's merged output is byte-identical to independently run shard
// crawls merged by hand — process supervision, the UDP control plane,
// heartbeat chunking and the merge step all leave no trace in the data.
func TestFleetEquivalence(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		cfg := testConfig(t, n)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		got, err := os.ReadFile(cfg.OutFile)
		if err != nil {
			t.Fatal(err)
		}
		want := baselineMerged(t, n, "")
		if !bytes.Equal(got, want) {
			t.Fatalf("N=%d: fleet merged output differs from independent shard merge\nfleet:\n%s\nbaseline:\n%s", n, got, want)
		}
		if res.Restarts != 0 {
			t.Fatalf("N=%d: unexpected restarts: %d", n, res.Restarts)
		}
		if len(res.PerWorker) != n {
			t.Fatalf("N=%d: %d worker statuses", n, len(res.PerWorker))
		}
		for _, w := range res.PerWorker {
			if w.Attempts != 1 || w.Heartbeats == 0 {
				t.Fatalf("N=%d: worker %d: attempts=%d heartbeats=%d", n, w.Worker, w.Attempts, w.Heartbeats)
			}
		}
		if res.Stats.NATedIPs != len(res.Merged) || len(res.Merged) == 0 {
			t.Fatalf("N=%d: merged stats inconsistent: NATedIPs=%d merged=%d", n, res.Stats.NATedIPs, len(res.Merged))
		}
	}
}

// TestFleetEquivalenceBursty repeats the equivalence check under the bursty
// fault scenario: fault injection is seeded per shard crawl, so the fleet
// remains byte-reproducible even on a lossy, bursty network.
func TestFleetEquivalenceBursty(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.FaultScenario = "bursty"
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(cfg.OutFile)
	if err != nil {
		t.Fatal(err)
	}
	want := baselineMerged(t, 2, "bursty")
	if !bytes.Equal(got, want) {
		t.Fatalf("bursty fleet merged output differs from independent shard merge\nfleet:\n%s\nbaseline:\n%s", got, want)
	}
}

// TestFleetSingleWorkerMatchesPlainCrawl: fleet(1) output is byte-identical
// to an unsharded, un-coordinated crawl — and its merged statistics equal
// the single crawl's statistics field for field (the union corrections must
// collapse to no-ops).
func TestFleetSingleWorkerMatchesPlainCrawl(t *testing.T) {
	cfg := testConfig(t, 1)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(cfg.OutFile)
	if err != nil {
		t.Fatal(err)
	}

	plain, err := RunCrawl(CrawlJob{Seed: testSeed, Scale: testScale, Duration: testDuration, Loss: testLoss})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	want := filepath.Join(dir, "plain.txt")
	if err := WriteOut(want, plain.Detected, nil); err != nil {
		t.Fatal(err)
	}
	wantData, err := os.ReadFile(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantData) {
		t.Fatalf("fleet(1) output differs from plain crawl\nfleet:\n%s\nplain:\n%s", got, wantData)
	}
	if !reflect.DeepEqual(res.Stats, plain.Stats) {
		t.Fatalf("fleet(1) merged stats differ from plain crawl stats:\n got %+v\nwant %+v", res.Stats, plain.Stats)
	}
	if res.TruePositives != plain.TruePositives {
		t.Fatalf("fleet(1) true positives %d, plain %d", res.TruePositives, plain.TruePositives)
	}
}

// TestFleetKillWorkerRestart kills worker 2 mid-crawl via the chaos hook
// and verifies the coordinator restarts the shard and the merged output is
// still byte-identical to the undisturbed baseline: a worker crash costs
// wall time, never data.
func TestFleetKillWorkerRestart(t *testing.T) {
	cfg := testConfig(t, 2)
	// A longer crawl so the kill lands mid-flight, before the worker
	// finishes (the chaos hook waits for the first heartbeat).
	cfg.Duration = 48 * time.Hour
	cfg.Scale = 0.08
	cfg.KillWorker = 2
	cfg.HBInterval = 10 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts < 1 {
		t.Fatalf("expected at least one restart, got %d", res.Restarts)
	}
	w2 := res.PerWorker[1]
	if !w2.Killed || w2.Attempts < 2 {
		t.Fatalf("worker 2 status: killed=%v attempts=%d", w2.Killed, w2.Attempts)
	}

	// The undisturbed fleet must produce identical bytes.
	calm := testConfig(t, 2)
	calm.Duration = cfg.Duration
	calm.Scale = cfg.Scale
	if _, err := Run(calm); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(cfg.OutFile)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(calm.OutFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("merged output changed after a mid-crawl worker kill + restart")
	}
}

// TestFleetBudgetDeterministic: a rate-budgeted fleet still produces
// identical output across runs (the token bucket rides the simulation
// clock), and the budget demonstrably throttles the crawl.
func TestFleetBudgetDeterministic(t *testing.T) {
	run := func() ([]byte, crawler.Stats) {
		cfg := testConfig(t, 2)
		cfg.Budget = Budget{Rate: 0.05, MaxInflight: 8} // aggregate: one query per 20s of sim time
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(cfg.OutFile)
		if err != nil {
			t.Fatal(err)
		}
		return data, res.Stats
	}
	a, aStats := run()
	b, bStats := run()
	if !bytes.Equal(a, b) {
		t.Fatal("budgeted fleet output not reproducible")
	}
	if !reflect.DeepEqual(aStats, bStats) {
		t.Fatalf("budgeted fleet stats not reproducible:\n%+v\n%+v", aStats, bStats)
	}

	free, err := Run(testConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if aStats.MessagesSent >= free.Stats.MessagesSent {
		t.Fatalf("budget did not throttle: budgeted sent %d, unlimited sent %d",
			aStats.MessagesSent, free.Stats.MessagesSent)
	}
}

// TestFleetObsDeterminism pins the observability contract: the
// deterministic metric namespace is identical across two runs of the same
// fleet, while the wall-clock namespace (heartbeats, restarts, merge
// latency) is present but excluded from the deterministic snapshot.
func TestFleetObsDeterminism(t *testing.T) {
	snap := func() ([]obs.Metric, string) {
		reg := obs.NewRegistry()
		cfg := testConfig(t, 2)
		cfg.Obs = reg
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return reg.DeterministicSnapshot(), reg.RenderText(true)
	}
	detA, fullA := snap()
	detB, _ := snap()
	if !reflect.DeepEqual(detA, detB) {
		t.Fatalf("deterministic fleet metrics diverged across identical runs:\n%+v\n%+v", detA, detB)
	}
	for _, name := range []string{"fleet_workers", "fleet_shards_planned", "fleet_merged_addrs"} {
		found := false
		for _, m := range detA {
			if m.Name == name {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("deterministic snapshot missing %s:\n%+v", name, detA)
		}
	}
	for _, name := range []string{"wall_fleet_heartbeats_total", "wall_fleet_workers_live", "wall_fleet_merge_millis"} {
		if !strings.Contains(fullA, name) {
			t.Fatalf("full render missing %s:\n%s", name, fullA)
		}
	}
	for _, m := range detA {
		if strings.HasPrefix(m.Name, obs.WallPrefix) {
			t.Fatalf("wall metric %s leaked into the deterministic snapshot", m.Name)
		}
	}
}

// TestRunCrawlChunkingNeutral: slicing the simulated run into heartbeat
// chunks never changes the crawl's output — the property that lets workers
// publish progress without perturbing determinism.
func TestRunCrawlChunkingNeutral(t *testing.T) {
	whole, err := RunCrawl(CrawlJob{Seed: testSeed, Scale: testScale, Duration: testDuration, Loss: testLoss})
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	chunked, err := RunCrawl(CrawlJob{
		Seed: testSeed, Scale: testScale, Duration: testDuration, Loss: testLoss,
		Chunk:    17 * time.Minute, // deliberately odd: duration is not a multiple
		Progress: func(Snapshot) { snaps++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if snaps == 0 {
		t.Fatal("progress callback never ran")
	}
	if !reflect.DeepEqual(whole.Stats, chunked.Stats) {
		t.Fatalf("chunking changed stats:\n got %+v\nwant %+v", chunked.Stats, whole.Stats)
	}
	if !reflect.DeepEqual(whole.Detected, chunked.Detected) {
		t.Fatal("chunking changed detections")
	}
}

// TestRunCrawlCancel: closing Cancel stops the crawl at a chunk boundary
// and flags the result, without error — crash semantics for LocalRunner.
func TestRunCrawlCancel(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	res, err := RunCrawl(CrawlJob{
		Seed: testSeed, Scale: testScale, Duration: testDuration, Loss: testLoss,
		Chunk:  time.Hour,
		Cancel: cancel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled {
		t.Fatal("pre-cancelled crawl not flagged Cancelled")
	}
}
