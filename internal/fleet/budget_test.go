package fleet

import (
	"math"
	"testing"
	"time"
)

// TestBudgetSplitSumsExact pins the allocation invariant: the per-shard
// shares always sum to exactly the aggregate rate, whatever N, so a fleet
// never exceeds (or silently under-uses) its budget.
func TestBudgetSplitSumsExact(t *testing.T) {
	for _, rate := range []float64{0, 1, 10, 33.3, 1000, 0.7} {
		for n := 1; n <= 13; n++ {
			parts := Budget{Rate: rate, Burst: 5, MaxInflight: 9}.Split(n)
			if len(parts) != n {
				t.Fatalf("Split(%d) returned %d parts", n, len(parts))
			}
			var sum float64
			for _, p := range parts {
				sum += p.Rate
				if p.Burst != 5 || p.MaxInflight != 9 {
					t.Fatalf("Split(%d) dropped burst/inflight: %+v", n, p)
				}
			}
			if sum != rate {
				t.Fatalf("Split(%d) of rate %v sums to %v (off by %g)", n, rate, sum, sum-rate)
			}
		}
	}
	if (Budget{}).Split(0) != nil {
		t.Fatal("Split(0) should return nil")
	}
}

// TestBudgetReassignmentConserved models a restart: the dead worker's share
// moves to its replacement, so live allocations still sum to the total.
func TestBudgetReassignmentConserved(t *testing.T) {
	total := Budget{Rate: 100}
	parts := total.Split(3)
	// Worker 2 dies; its replacement inherits parts[1] untouched.
	replacement := parts[1]
	live := []Budget{parts[0], replacement, parts[2]}
	var sum float64
	for _, p := range live {
		sum += p.Rate
	}
	if math.Abs(sum-total.Rate) > 1e-12 {
		t.Fatalf("after reassignment live shares sum to %v, want %v", sum, total.Rate)
	}
}

func TestTokenBucketGrants(t *testing.T) {
	tb := NewTokenBucket(10, 5) // 10/s, burst 5
	t0 := time.Unix(0, 0)
	if got := tb.Take(t0, 100); got != 5 {
		t.Fatalf("initial burst grant = %d, want 5", got)
	}
	if got := tb.Take(t0, 100); got != 0 {
		t.Fatalf("drained bucket granted %d, want 0", got)
	}
	// 300ms accrues 3 tokens.
	if got := tb.Take(t0.Add(300*time.Millisecond), 100); got != 3 {
		t.Fatalf("after 300ms grant = %d, want 3", got)
	}
	// Accrual caps at burst depth.
	if got := tb.Take(t0.Add(time.Hour), 100); got != 5 {
		t.Fatalf("after 1h grant = %d, want burst 5", got)
	}
	// Grants never exceed the ask.
	if got := tb.Take(t0.Add(2*time.Hour), 2); got != 2 {
		t.Fatalf("asked 2, granted %d", got)
	}
}

// TestTokenBucketDeterministic: identical (now, n) call sequences produce
// identical grant sequences — the property that keeps budgeted crawls
// reproducible.
func TestTokenBucketDeterministic(t *testing.T) {
	run := func() []int {
		tb := NewTokenBucket(7.5, 3)
		t0 := time.Unix(1000, 0)
		var grants []int
		for i := 0; i < 200; i++ {
			grants = append(grants, tb.Take(t0.Add(time.Duration(i)*137*time.Millisecond), 4))
		}
		return grants
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("grant %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTokenBucketNil(t *testing.T) {
	if tb := NewTokenBucket(0, 5); tb != nil {
		t.Fatal("rate 0 should return nil (no limiter)")
	}
	var tb *TokenBucket
	if got := tb.Take(time.Now(), 7); got != 7 {
		t.Fatalf("nil bucket granted %d, want pass-through 7", got)
	}
}

func TestTokenBucketDefaultBurst(t *testing.T) {
	tb := NewTokenBucket(12, 0)
	if got := tb.Take(time.Unix(0, 0), 100); got != 12 {
		t.Fatalf("default burst grant = %d, want one second of rate (12)", got)
	}
	tb = NewTokenBucket(0.2, 0)
	if got := tb.Take(time.Unix(0, 0), 100); got != 1 {
		t.Fatalf("sub-1 rate default burst grant = %d, want minimum 1", got)
	}
}
