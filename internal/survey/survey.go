// Package survey models the paper's questionnaire of network operators
// (Section 6 and Appendix A): response records, the aggregate tabulations of
// Table 1, and the per-blocklist-type breakdown of Fig 9.
//
// The paper's raw responses are not public; StandardResponses generates a
// synthetic 65-respondent dataset whose marginal distributions match every
// aggregate the paper reports, so the tabulation pipeline reproduces
// Table 1 and Fig 9 faithfully.
package survey

import (
	"math/rand"
	"sort"

	"github.com/reuseblock/reuseblock/internal/blocklist"
)

// Response is one operator's answers to the questions analysed in the paper.
type Response struct {
	ID int
	// UsesExternal reports use of third-party (paid or public) blocklists.
	UsesExternal bool
	// UsesInternal reports operator-curated internal blocklists.
	UsesInternal bool
	// PaidLists and PublicLists count subscribed feeds.
	PaidLists   int
	PublicLists int
	// DirectBlock: blocklists drive packet filters directly.
	DirectBlock bool
	// ThreatIntel: blocklists feed a threat-intelligence system instead.
	ThreatIntel bool
	// AnsweredReuse marks the 34 respondents who answered the reuse
	// questions; the two concern flags below are meaningful only then.
	AnsweredReuse  bool
	DynamicConcern bool
	CGNConcern     bool
	// TypesUsed are the external blocklist categories the operator uses.
	TypesUsed []blocklist.Type
}

// Summary mirrors Table 1 plus the headline Section 6 statistics.
type Summary struct {
	Respondents int
	// Table 1 rows.
	ExternalPct      float64 // "External blocklists 85%"
	PaidAvg          float64 // "Paid-for blocklists Avg:2"
	PaidMax          int     // "Max:39"
	PublicAvg        float64 // "Public blocklists Avg:10"
	PublicMax        int     // "Max:68"
	DirectBlockPct   float64 // "Directly block IPs 59%"
	ThreatIntelPct   float64 // "Threat intelligence system 35%"
	ReuseRespondents int     // 34
	DynamicPct       float64 // "Dynamic addressing* 76%"
	CGNPct           float64 // "Carrier-grade NATs* 56%"
	// Extras reported in the text.
	InternalPct float64 // 70% maintain internal lists
	TwoPlusPct  float64 // 55% use two or more types
}

// Summarize tabulates responses into the Table 1 aggregates.
func Summarize(responses []Response) Summary {
	s := Summary{Respondents: len(responses)}
	if len(responses) == 0 {
		return s
	}
	var ext, internal, direct, ti, twoPlus int
	var paidSum, publicSum int
	var reuse, dyn, cgn int
	for _, r := range responses {
		if r.UsesExternal {
			ext++
		}
		if r.UsesInternal {
			internal++
		}
		if r.DirectBlock {
			direct++
		}
		if r.ThreatIntel {
			ti++
		}
		if len(r.TypesUsed) >= 2 {
			twoPlus++
		}
		paidSum += r.PaidLists
		publicSum += r.PublicLists
		if r.PaidLists > s.PaidMax {
			s.PaidMax = r.PaidLists
		}
		if r.PublicLists > s.PublicMax {
			s.PublicMax = r.PublicLists
		}
		if r.AnsweredReuse {
			reuse++
			if r.DynamicConcern {
				dyn++
			}
			if r.CGNConcern {
				cgn++
			}
		}
	}
	n := float64(len(responses))
	s.ExternalPct = float64(ext) / n
	s.InternalPct = float64(internal) / n
	s.DirectBlockPct = float64(direct) / n
	s.ThreatIntelPct = float64(ti) / n
	s.TwoPlusPct = float64(twoPlus) / n
	s.PaidAvg = float64(paidSum) / n
	s.PublicAvg = float64(publicSum) / n
	s.ReuseRespondents = reuse
	if reuse > 0 {
		s.DynamicPct = float64(dyn) / float64(reuse)
		s.CGNPct = float64(cgn) / float64(reuse)
	}
	return s
}

// TypeUsage is one Fig 9 bar: the share of reuse-affected operators using
// blocklists of the given type.
type TypeUsage struct {
	Type    blocklist.Type
	Percent float64
}

// TypesAmongAffected reproduces Fig 9: among operators who reported reuse
// issues (either concern flag), the fraction using each blocklist type,
// sorted ascending like the paper's horizontal bars.
func TypesAmongAffected(responses []Response) []TypeUsage {
	counts := make(map[blocklist.Type]int)
	affected := 0
	for _, r := range responses {
		if !r.AnsweredReuse || (!r.DynamicConcern && !r.CGNConcern) {
			continue
		}
		affected++
		for _, t := range r.TypesUsed {
			counts[t]++
		}
	}
	out := make([]TypeUsage, 0, len(counts))
	for t, c := range counts {
		out = append(out, TypeUsage{Type: t, Percent: float64(c) / float64(max(affected, 1))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Percent != out[j].Percent {
			return out[i].Percent < out[j].Percent
		}
		return out[i].Type < out[j].Type
	})
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// fig9Order lists blocklist types in the paper's Fig 9 order, least to most
// used among affected operators.
var fig9Order = []blocklist.Type{
	blocklist.VOIP, blocklist.Banking, blocklist.FTP, blocklist.Backdoor,
	blocklist.HTTP, blocklist.SSH, blocklist.Ransomware, blocklist.Bruteforce,
	blocklist.DDoS, blocklist.Reputation, blocklist.Spam,
}

// StandardResponses builds a 65-respondent dataset matching every aggregate
// the paper reports: 85% external usage, avg 2 / max 39 paid lists, avg 10 /
// max 68 public lists, 59% direct blocking, 35% threat-intel usage, 34
// reuse-question respondents with 76% dynamic and 56% CGN concern, and a
// Fig 9 type gradient rising from VOIP to spam.
func StandardResponses(seed int64) []Response {
	rng := rand.New(rand.NewSource(seed))
	const n = 65
	out := make([]Response, n)
	perm := func(k int) []int { // first k of a shuffled index set
		p := rng.Perm(n)
		return p[:k]
	}
	mark := func(idx []int, f func(r *Response)) {
		for _, i := range idx {
			f(&out[i])
		}
	}
	for i := range out {
		out[i].ID = i + 1
	}
	mark(perm(55), func(r *Response) { r.UsesExternal = true }) // 85%
	mark(perm(46), func(r *Response) { r.UsesInternal = true }) // ~70%
	mark(perm(38), func(r *Response) { r.DirectBlock = true })  // ~59%
	mark(perm(23), func(r *Response) { r.ThreatIntel = true })  // ~35%
	// Paid list counts: mostly 0-3, one outlier at 39 (avg ≈ 2).
	for i := range out {
		out[i].PaidLists = rng.Intn(4)
	}
	out[rng.Intn(n)].PaidLists = 39
	// Public list counts: mostly 4-14, one outlier at 68 (avg ≈ 10).
	for i := range out {
		out[i].PublicLists = 4 + rng.Intn(11)
	}
	out[rng.Intn(n)].PublicLists = 68
	// 34 answered the reuse questions; 26 dynamic concern (76%), 19 CGN
	// concern (56%).
	answered := perm(34)
	mark(answered, func(r *Response) { r.AnsweredReuse = true })
	for i, idx := range answered {
		out[idx].DynamicConcern = i < 26
		out[idx].CGNConcern = i >= 34-19
	}
	// Blocklist types: every respondent uses a random suffix of the Fig 9
	// gradient, so usage rises monotonically from VOIP to spam.
	for i := range out {
		if !out[i].UsesExternal {
			continue
		}
		start := rng.Intn(len(fig9Order))
		// Bias toward long suffixes so spam/reputation approach 100%.
		if rng.Float64() < 0.5 {
			start = rng.Intn(3) + len(fig9Order) - 5
		}
		if start < 0 {
			start = 0
		}
		out[i].TypesUsed = append([]blocklist.Type(nil), fig9Order[start:]...)
	}
	return out
}
