package survey

import (
	"math"
	"testing"

	"github.com/reuseblock/reuseblock/internal/blocklist"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Respondents != 0 || s.ExternalPct != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSmall(t *testing.T) {
	rs := []Response{
		{UsesExternal: true, DirectBlock: true, PaidLists: 4, PublicLists: 10,
			AnsweredReuse: true, DynamicConcern: true, CGNConcern: true,
			TypesUsed: []blocklist.Type{blocklist.Spam, blocklist.DDoS}},
		{UsesInternal: true, ThreatIntel: true, PublicLists: 2, AnsweredReuse: true},
	}
	s := Summarize(rs)
	if s.Respondents != 2 || s.ExternalPct != 0.5 || s.DirectBlockPct != 0.5 {
		t.Errorf("summary = %+v", s)
	}
	if s.PaidAvg != 2 || s.PaidMax != 4 || s.PublicAvg != 6 || s.PublicMax != 10 {
		t.Errorf("list stats = %+v", s)
	}
	if s.ReuseRespondents != 2 || s.DynamicPct != 0.5 || s.CGNPct != 0.5 {
		t.Errorf("reuse stats = %+v", s)
	}
	if s.TwoPlusPct != 0.5 {
		t.Errorf("TwoPlusPct = %v", s.TwoPlusPct)
	}
}

func TestStandardResponsesMatchTable1(t *testing.T) {
	rs := StandardResponses(1)
	if len(rs) != 65 {
		t.Fatalf("respondents = %d", len(rs))
	}
	s := Summarize(rs)
	approx := func(name string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %.3f, want %.3f ± %.3f", name, got, want, tol)
		}
	}
	approx("ExternalPct", s.ExternalPct, 0.85, 0.02)
	approx("DirectBlockPct", s.DirectBlockPct, 0.59, 0.02)
	approx("ThreatIntelPct", s.ThreatIntelPct, 0.35, 0.02)
	approx("InternalPct", s.InternalPct, 0.70, 0.03)
	approx("PaidAvg", s.PaidAvg, 2, 1)
	approx("PublicAvg", s.PublicAvg, 10, 1.5)
	if s.PaidMax != 39 || s.PublicMax != 68 {
		t.Errorf("maxima = %d/%d, want 39/68", s.PaidMax, s.PublicMax)
	}
	if s.ReuseRespondents != 34 {
		t.Errorf("ReuseRespondents = %d, want 34", s.ReuseRespondents)
	}
	approx("DynamicPct", s.DynamicPct, 26.0/34, 0.001)
	approx("CGNPct", s.CGNPct, 19.0/34, 0.001)
}

func TestStandardResponsesDeterministic(t *testing.T) {
	a := StandardResponses(7)
	b := StandardResponses(7)
	for i := range a {
		if a[i].ID != b[i].ID || a[i].PaidLists != b[i].PaidLists ||
			a[i].UsesExternal != b[i].UsesExternal || len(a[i].TypesUsed) != len(b[i].TypesUsed) {
			t.Fatalf("response %d differs between runs", i)
		}
	}
}

func TestTypesAmongAffectedGradient(t *testing.T) {
	rs := StandardResponses(3)
	usage := TypesAmongAffected(rs)
	if len(usage) == 0 {
		t.Fatal("no type usage")
	}
	// Output is sorted ascending; spam must be the most-used type and
	// close to universal among affected operators (Fig 9).
	top := usage[len(usage)-1]
	if top.Type != blocklist.Spam && top.Type != blocklist.Reputation {
		t.Errorf("top type = %v, want spam or reputation", top.Type)
	}
	if top.Percent < 0.7 {
		t.Errorf("top type usage = %.2f, want high", top.Percent)
	}
	for i := 1; i < len(usage); i++ {
		if usage[i].Percent < usage[i-1].Percent {
			t.Fatal("usage not sorted ascending")
		}
	}
}

func TestTypesAmongAffectedIgnoresUnaffected(t *testing.T) {
	rs := []Response{
		{AnsweredReuse: true, DynamicConcern: true, TypesUsed: []blocklist.Type{blocklist.Spam}},
		{AnsweredReuse: true, TypesUsed: []blocklist.Type{blocklist.DDoS}},     // no concern
		{AnsweredReuse: false, TypesUsed: []blocklist.Type{blocklist.Malware}}, // didn't answer
	}
	usage := TypesAmongAffected(rs)
	if len(usage) != 1 || usage[0].Type != blocklist.Spam || usage[0].Percent != 1 {
		t.Errorf("usage = %+v", usage)
	}
}
