// Observability determinism suite: the obs layer's deterministic surface —
// count-valued metric snapshots and structural trace records — must be
// byte-identical for any -workers setting, with and without an active fault
// scenario, and enabling instrumentation must not perturb the report itself.
package reuseblock_test

import (
	"reflect"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/core"
	"github.com/reuseblock/reuseblock/internal/faults"
	"github.com/reuseblock/reuseblock/internal/obs"
)

// obsStudy runs the small two-vantage study with instrumentation enabled and
// returns the report text, the registry and the tracer.
func obsStudy(t *testing.T, workers int, scenario string) (string, *obs.Registry, *obs.Tracer) {
	t.Helper()
	scn, err := faults.Lookup(scenario)
	if err != nil {
		t.Fatal(err)
	}
	wp := blgen.DefaultParams(1)
	wp.Scale = 0.05
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	s := core.NewStudy(core.Config{
		Seed:          1,
		World:         &wp,
		CrawlDuration: 4 * time.Hour,
		Vantages:      2,
		Workers:       workers,
		Faults:        scn,
		Obs:           reg,
		Trace:         tr,
	})
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("scenario %q workers %d: %v", scenario, workers, err)
	}
	return rep.Render(), reg, tr
}

// structural projects a tracer's records onto their deterministic fields.
func structural(tr *obs.Tracer) []obs.SpanRecord {
	recs := tr.Records()
	out := make([]obs.SpanRecord, len(recs))
	for i, r := range recs {
		out[i] = r.Structural()
	}
	return out
}

// TestObsSnapshotWorkerInvariant pins the package's core contract: the
// deterministic metric snapshot and the structural span tree are identical
// for 1 and 4 workers — fault-free and under an active fault scenario.
func TestObsSnapshotWorkerInvariant(t *testing.T) {
	scenarios := []string{"", "bursty"}
	if testing.Short() {
		scenarios = scenarios[:1]
	}
	for _, scenario := range scenarios {
		name := scenario
		if name == "" {
			name = "fault-free"
		}
		t.Run(name, func(t *testing.T) {
			rep1, reg1, tr1 := obsStudy(t, 1, scenario)
			rep4, reg4, tr4 := obsStudy(t, 4, scenario)
			if rep1 != rep4 {
				t.Error("report text differs between 1 and 4 workers")
			}
			m1, m4 := reg1.RenderText(false), reg4.RenderText(false)
			if m1 != m4 {
				t.Errorf("deterministic metric snapshot differs between 1 and 4 workers:\n--- workers=1\n%s\n--- workers=4\n%s", m1, m4)
			}
			if m1 == "" {
				t.Error("instrumented study recorded no metrics")
			}
			s1, s4 := structural(tr1), structural(tr4)
			if len(s1) == 0 {
				t.Error("instrumented study recorded no spans")
			}
			if !reflect.DeepEqual(s1, s4) {
				t.Errorf("structural span records differ between 1 and 4 workers (%d vs %d spans)", len(s1), len(s4))
			}
		})
	}
}

// TestObsOffLeavesReportUnchanged proves instrumentation is non-invasive:
// the same study with Obs and Trace nil renders the same report bytes.
func TestObsOffLeavesReportUnchanged(t *testing.T) {
	instrumented, _, _ := obsStudy(t, 2, "")
	wp := blgen.DefaultParams(1)
	wp.Scale = 0.05
	s := core.NewStudy(core.Config{
		Seed:          1,
		World:         &wp,
		CrawlDuration: 4 * time.Hour,
		Vantages:      2,
		Workers:       2,
	})
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Render() != instrumented {
		t.Error("enabling obs changed the report bytes")
	}
}

// TestObsManifestStages pins the manifest's deterministic fields after a run.
func TestObsManifestStages(t *testing.T) {
	wp := blgen.DefaultParams(1)
	wp.Scale = 0.05
	scn, err := faults.Lookup("bursty")
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewStudy(core.Config{
		Seed:          1,
		World:         &wp,
		CrawlDuration: 4 * time.Hour,
		Vantages:      2,
		Workers:       2,
		Faults:        scn,
		Obs:           obs.NewRegistry(),
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	m := s.Manifest()
	if m.Seed != 1 || m.Workers != 2 || m.Vantages != 2 || m.FaultScenario != "bursty" {
		t.Errorf("manifest params = %+v", m)
	}
	wantStages := map[string]bool{"crawl": false, "ripe": false, "icmp": false, "survey": false}
	for _, st := range m.Stages {
		if _, ok := wantStages[st.Stage]; ok {
			wantStages[st.Stage] = true
		}
		if st.Status == "" {
			t.Errorf("stage %q has empty status", st.Stage)
		}
	}
	for stage, seen := range wantStages {
		if !seen {
			t.Errorf("manifest missing stage %q", stage)
		}
	}
	if len(m.Metrics) == 0 {
		t.Error("manifest carries no metric snapshot")
	}
	if _, err := m.JSON(); err != nil {
		t.Errorf("manifest does not marshal: %v", err)
	}
}
