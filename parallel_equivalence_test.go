// Equivalence tests for the deterministic parallel pipeline: a study run
// with N workers must produce byte-identical output to the sequential run.
// Every fan-out in the pipeline (feed generation, the stage DAG, per-vantage
// crawls, ICMP block shards, analysis shards, the report DAG) is covered
// transitively because Report.Render touches all of their outputs.
package reuseblock_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/core"
)

// renderStudy runs a small multi-vantage study end to end with the given
// worker count and returns the full rendered report.
func renderStudy(t *testing.T, seed int64, scale float64, workers int) string {
	t.Helper()
	wp := blgen.DefaultParams(seed)
	wp.Scale = scale
	s := core.NewStudy(core.Config{
		Seed:          seed,
		World:         &wp,
		CrawlDuration: 2 * time.Hour,
		Vantages:      2,
		Workers:       workers,
	})
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("seed %d scale %g workers %d: %v", seed, scale, workers, err)
	}
	return rep.Render()
}

// TestParallelEquivalentToSequential checks Workers=4 against the Workers=1
// legacy path across several seeds and world scales. Run it under -race:
// with 4 workers the fan-outs genuinely interleave (even on one CPU), so
// this test doubles as the race-detection workload for the whole pipeline.
func TestParallelEquivalentToSequential(t *testing.T) {
	// Seed 3's 0.05-scale world has no publicly reachable swarm, so the
	// seed set skips to 4.
	seeds := []int64{1, 2, 4}
	scales := []float64{0.05, 0.15}
	if testing.Short() {
		seeds = seeds[:1]
		scales = scales[:1]
	}
	for _, seed := range seeds {
		for _, scale := range scales {
			t.Run(fmt.Sprintf("seed=%d/scale=%g", seed, scale), func(t *testing.T) {
				seq := renderStudy(t, seed, scale, 1)
				par := renderStudy(t, seed, scale, 4)
				if seq != par {
					t.Errorf("workers=4 diverged from workers=1 at %s", firstDiff(seq, par))
				}
			})
		}
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(a, b string) string {
	line, col := 1, 1
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("line %d col %d (%q vs %q)", line, col, a[i], b[i])
		}
		if a[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}
