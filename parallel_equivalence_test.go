// Equivalence tests for the deterministic parallel pipeline: a study run
// with N workers must produce byte-identical output to the sequential run.
// Every fan-out in the pipeline (feed generation, the stage DAG, per-vantage
// crawls, ICMP block shards, analysis shards, the report DAG) is covered
// transitively because Report.Render touches all of their outputs.
package reuseblock_test

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/core"
)

// renderStudy runs a small multi-vantage study end to end with the given
// worker count and returns the full rendered report.
func renderStudy(t *testing.T, seed int64, scale float64, workers int) string {
	t.Helper()
	wp := blgen.DefaultParams(seed)
	wp.Scale = scale
	s := core.NewStudy(core.Config{
		Seed:          seed,
		World:         &wp,
		CrawlDuration: 2 * time.Hour,
		Vantages:      2,
		Workers:       workers,
	})
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("seed %d scale %g workers %d: %v", seed, scale, workers, err)
	}
	return rep.Render()
}

// TestParallelEquivalentToSequential checks Workers=4 against the Workers=1
// legacy path across several seeds and world scales. Run it under -race:
// with 4 workers the fan-outs genuinely interleave (even on one CPU), so
// this test doubles as the race-detection workload for the whole pipeline.
func TestParallelEquivalentToSequential(t *testing.T) {
	// Seed 3's 0.05-scale world has no publicly reachable swarm, so the
	// seed set skips to 4.
	seeds := []int64{1, 2, 4}
	scales := []float64{0.05, 0.15}
	if testing.Short() {
		seeds = seeds[:1]
		scales = scales[:1]
	}
	for _, seed := range seeds {
		for _, scale := range scales {
			t.Run(fmt.Sprintf("seed=%d/scale=%g", seed, scale), func(t *testing.T) {
				seq := renderStudy(t, seed, scale, 1)
				par := renderStudy(t, seed, scale, 4)
				if seq != par {
					t.Errorf("workers=4 diverged from workers=1 at %s", firstDiff(seq, par))
				}
			})
		}
	}
}

// preRefactorReportHashes pins SHA-256 digests of rendered reports captured
// on the pre-compact-state tree (commit e9c9148, before internal/ipset, the
// pooled dht/netsim state, and the sharded event loop landed). The compact
// representations must be invisible in every artifact byte: map-backed
// address sets became interval+bitmap sets, fixed routing arrays became
// sparse ones, node and NAT state moved into pools — all behind unchanged
// iteration orders and RNG sequences. Seed 3's 0.05-scale world has no
// publicly reachable swarm, so only its 0.15 scale is pinned.
var preRefactorReportHashes = map[string]string{
	"seed=1/scale=0.05": "1d93eedc3224aea2573fd5f9a5c6a2b5f0559d7b17d87ee1518af4769ee1f309",
	"seed=1/scale=0.15": "e3929cefc4663c22d2fb38c10c25bd47298a8be2c20a187abdc0a850dcf6d514",
	"seed=2/scale=0.05": "cdb01308011a748cee3e182dce7808c97108fbc6a33164f25ef1fbeb1a908785",
	"seed=2/scale=0.15": "a5d779a81c81f32b2ac0885ca7a66d64c0054bd8fb2bae3f7a26aad8a6fd25aa",
	"seed=3/scale=0.15": "91678016486d0b1c57e32ad9b4e4d0c7205af170fea44622c2a720e4234b7041",
	"seed=4/scale=0.05": "693c7c38aafe957b6b39475eca5c3dbf4bcf03c25658793526350cd20cdba923",
	"seed=4/scale=0.15": "aaaad9f71e4208498eb0591b443ec3268ed42554d01fd717b27d275cffcec397",
}

// TestCompactStateEquivalence re-renders each pinned configuration on the
// compact-state tree and compares digests: one flipped byte anywhere in any
// table or figure fails the run. In -short mode only the first key runs.
func TestCompactStateEquivalence(t *testing.T) {
	keys := []string{
		"seed=1/scale=0.05", "seed=1/scale=0.15",
		"seed=2/scale=0.05", "seed=2/scale=0.15",
		"seed=3/scale=0.15",
		"seed=4/scale=0.05", "seed=4/scale=0.15",
	}
	if testing.Short() {
		keys = keys[:1]
	}
	for _, key := range keys {
		key := key
		t.Run(key, func(t *testing.T) {
			var seed int64
			var scale float64
			if _, err := fmt.Sscanf(key, "seed=%d/scale=%g", &seed, &scale); err != nil {
				t.Fatalf("bad key %q: %v", key, err)
			}
			sum := sha256.Sum256([]byte(renderStudy(t, seed, scale, 1)))
			if got := hex.EncodeToString(sum[:]); got != preRefactorReportHashes[key] {
				t.Errorf("report digest %s, want pre-refactor %s — compact state leaked into artifact bytes",
					got, preRefactorReportHashes[key])
			}
		})
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(a, b string) string {
	line, col := 1, 1
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("line %d col %d (%q vs %q)", line, col, a[i], b[i])
		}
		if a[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}
