// Package reuseblock reproduces "Quantifying the Impact of Blocklisting in
// the Age of Address Reuse" (Ramanathan, Hossain, Mirkovic, Yu, Afroz —
// ACM IMC 2020) as a self-contained Go system.
//
// The paper's two reuse-detection techniques — a BitTorrent DHT crawler for
// NATed addresses and a RIPE Atlas connection-log pipeline for dynamically
// allocated prefixes — are implemented in internal/crawler and
// internal/ripeatlas. Because the live Internet cannot ship in a module,
// every substrate the measurements ran against is rebuilt: a deterministic
// discrete-event network with NAT gateways (internal/netsim), a full
// bencode/KRPC/DHT stack (internal/bencode, internal/krpc, internal/dht), a
// synthetic Internet with ground truth (internal/blgen), the 151-blocklist
// feed model (internal/blocklist), the Cai et al. ICMP census baseline
// (internal/icmpsurvey), and the operator survey (internal/survey).
//
// internal/core ties the stages into a Study whose Report reproduces every
// table and figure of the paper; bench_test.go in this directory holds one
// benchmark per table and figure. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package reuseblock
