// Resilience suite: the study pipeline must survive every scripted fault
// scenario with its headline detections inside a pinned tolerance band of the
// fault-free baseline, stay bit-for-bit reproducible per seed, and remain
// worker-count invariant while faults are active. These bands are the
// contract the fault-injection layer is held to — tighten them only with
// evidence, loosen them never silently.
package reuseblock_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/core"
	"github.com/reuseblock/reuseblock/internal/faults"
)

// resilienceStudy runs the small two-vantage study under the named fault
// scenario ("" = fault-free baseline) and returns the study plus its report.
func resilienceStudy(t *testing.T, seed int64, workers int, scenario string) (*core.Study, *core.Report) {
	t.Helper()
	scn, err := faults.Lookup(scenario)
	if err != nil {
		t.Fatal(err)
	}
	wp := blgen.DefaultParams(seed)
	wp.Scale = 0.05
	s := core.NewStudy(core.Config{
		Seed:          seed,
		World:         &wp,
		CrawlDuration: 4 * time.Hour,
		Vantages:      2,
		Workers:       workers,
		Faults:        scn,
	})
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("scenario %q: %v", scenario, err)
	}
	return s, rep
}

// TestResilienceToleranceBands pins how far each moderate scenario may push
// the two headline results off the fault-free baseline: NAT-detection recall
// may drop by at most maxRecallDrop, and the ICMP baseline's dynamic-/24
// coverage must stay untouched unless the scenario scripts ICMP probe loss.
func TestResilienceToleranceBands(t *testing.T) {
	base, baseRep := resilienceStudy(t, 1, 0, "")
	if base.Degradation != nil {
		t.Fatal("fault-free run grew a degradation report")
	}
	baseRecall := baseRep.NATScore.Recall
	baseDynamic := base.Cai.DynamicBlocks.Len()
	if baseRecall <= 0 || baseDynamic == 0 {
		t.Fatalf("baseline is degenerate: recall %.3f, %d dynamic blocks", baseRecall, baseDynamic)
	}

	// Empirically (seed 1, scale 0.05, 4 h crawl) the retry/eviction policy
	// more than compensates for every scripted scenario — recall lands
	// 0.13–0.23 ABOVE the fault-free baseline, because the baseline crawler
	// gives up on first loss while the faulted crawler retries. The bands
	// below leave headroom for moderate regression but fail the suite the
	// moment a scenario starts genuinely starving NAT detection.
	scenarios := []struct {
		name          string
		maxRecallDrop float64 // absolute drop tolerated vs baseline recall
		icmpFaulted   bool    // scenario scripts ICMP probe loss
	}{
		{"bursty", 0.15, false},
		{"ratelimit", 0.15, false},
		{"corrupt", 0.15, false},
		{"byzantine", 0.15, false},
		{"storm", 0.20, false},
		{"blackout", 0.25, false},
		{"hostile", 0.30, true},
	}
	if testing.Short() {
		scenarios = scenarios[:1]
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			s, rep := resilienceStudy(t, 1, 0, sc.name)
			if s.Degradation == nil {
				t.Fatal("faulted run produced no degradation report")
			}
			if s.Degradation.Scenario != sc.name {
				t.Errorf("degradation names scenario %q, want %q", s.Degradation.Scenario, sc.name)
			}
			drop := baseRecall - rep.NATScore.Recall
			t.Logf("recall %.3f -> %.3f (drop %.3f, tolerance %.2f); faults %+v",
				baseRecall, rep.NATScore.Recall, drop, sc.maxRecallDrop, s.FaultStats)
			if drop > sc.maxRecallDrop {
				t.Errorf("NAT recall dropped %.3f (%.3f -> %.3f), tolerance %.2f",
					drop, baseRecall, rep.NATScore.Recall, sc.maxRecallDrop)
			}
			dyn := s.Cai.DynamicBlocks.Len()
			if !sc.icmpFaulted {
				if dyn != baseDynamic {
					t.Errorf("dynamic-/24 coverage moved without ICMP faults: %d vs %d", dyn, baseDynamic)
				}
				if s.Cai.Retransmissions != 0 {
					t.Errorf("ICMP retransmitted %d times without scripted probe loss", s.Cai.Retransmissions)
				}
			} else {
				lo, hi := baseDynamic*8/10, baseDynamic*12/10
				if dyn < lo || dyn > hi {
					t.Errorf("dynamic-/24 coverage %d outside [%d,%d] under probe loss", dyn, lo, hi)
				}
			}
		})
	}
}

// TestResilienceDeterminism: a faulted study is a pure function of its seed —
// two runs of the hostile scenario render byte-identical reports, degradation
// table included, and their fault counters match exactly.
func TestResilienceDeterminism(t *testing.T) {
	s1, r1 := resilienceStudy(t, 1, 0, "hostile")
	s2, r2 := resilienceStudy(t, 1, 0, "hostile")
	if a, b := r1.Render(), r2.Render(); a != b {
		t.Errorf("hostile scenario diverged across identical runs at %s", firstDiff(a, b))
	}
	if s1.FaultStats != s2.FaultStats {
		t.Errorf("fault counters diverged: %+v vs %+v", s1.FaultStats, s2.FaultStats)
	}
	if s1.CrawlStats != s2.CrawlStats {
		t.Errorf("crawl stats diverged: %+v vs %+v", s1.CrawlStats, s2.CrawlStats)
	}
}

// TestResilienceWorkerEquivalence: fault injection lives on each vantage's
// single-threaded event loop, so the parallel pipeline must stay equivalent
// to the sequential one under an active scenario.
func TestResilienceWorkerEquivalence(t *testing.T) {
	scenarios := []string{"bursty", "hostile"}
	if testing.Short() {
		scenarios = scenarios[:1]
	}
	for _, name := range scenarios {
		t.Run(name, func(t *testing.T) {
			_, seq := resilienceStudy(t, 1, 1, name)
			_, par := resilienceStudy(t, 1, 4, name)
			if a, b := seq.Render(), par.Render(); a != b {
				t.Errorf("workers=4 diverged from workers=1 under %s at %s", name, firstDiff(a, b))
			}
		})
	}
}

// TestResilienceScenarioCatalogue: every named scenario must run the study to
// completion — no panics, no aborts — and report its own name.
func TestResilienceScenarioCatalogue(t *testing.T) {
	if testing.Short() {
		t.Skip("catalogue sweep is covered by the tolerance bands in full mode")
	}
	for _, name := range faults.Names() {
		t.Run(name, func(t *testing.T) {
			s, rep := resilienceStudy(t, 2, 0, name)
			if rep == nil || s.Degradation == nil {
				t.Fatal("scenario produced no report or no degradation summary")
			}
			if got := fmt.Sprint(s.Degradation.Scenario); got != name {
				t.Errorf("degradation scenario %q, want %q", got, name)
			}
		})
	}
}
