// Ablation benchmarks for the design choices DESIGN.md calls out: the
// bt_ping verification rule, the /24 expansion granularity, the knee
// threshold, and the crawler's rate-limiting cool-down.
package reuseblock_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/core"
	"github.com/reuseblock/reuseblock/internal/crawler"
	"github.com/reuseblock/reuseblock/internal/dht"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/netsim"
	"github.com/reuseblock/reuseblock/internal/ripeatlas"
)

// BenchmarkAblationPingVerification compares the naive multi-port NAT signal
// (any IP ever seen with >1 port) against the paper's bt_ping verification
// rule, scoring both against ground truth. The verification step is what
// keeps precision high: port changes and stale entries create multi-port
// sightings that are not NATs.
func BenchmarkAblationPingVerification(b *testing.B) {
	wp := blgen.DefaultParams(1)
	wp.Scale = 0.2
	w := blgen.Generate(wp)
	trueNAT := iputil.NewSet()
	for _, n := range w.NATs {
		if n.BTUsers >= 2 {
			trueNAT.Add(n.Addr)
		}
	}
	b.ResetTimer()
	var naiveFP, verifiedFP, naiveN, verifiedN int
	for i := 0; i < b.N; i++ {
		c := runSmallCrawl(b, w, int64(i+1), 20*time.Minute)
		naive := c.MultiPortAddrs()
		verified := iputil.NewSet()
		for _, o := range c.NATed() {
			verified.Add(o.Addr)
		}
		naiveFP, verifiedFP, naiveN, verifiedN = 0, 0, naive.Len(), verified.Len()
		for _, a := range naive.Sorted() {
			if !trueNAT.Contains(a) {
				naiveFP++
			}
		}
		for _, a := range verified.Sorted() {
			if !trueNAT.Contains(a) {
				verifiedFP++
			}
		}
	}
	b.ReportMetric(float64(naiveN), "naive-detections")
	b.ReportMetric(float64(naiveFP), "naive-false-pos")
	b.ReportMetric(float64(verifiedN), "verified-detections")
	b.ReportMetric(float64(verifiedFP), "verified-false-pos")
}

// BenchmarkAblationExpandBits sweeps the prefix length dynamic detections
// are expanded to (/20, /24, /28): coarser expansion overcounts reuse,
// finer undercounts it (§3.2's boundary-estimation caveat).
func BenchmarkAblationExpandBits(b *testing.B) {
	s, _ := study(b)
	blocked := s.World.Collection.AllAddrs()
	var lines []string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lines = lines[:0]
		for _, bits := range []int{20, 24, 28} {
			res := ripeatlas.Detect(s.World.RIPELogs, ripeatlas.DetectOptions{ExpandBits: bits})
			count := 0
			for _, a := range blocked.Sorted() {
				if res.DynamicPrefixes.Covers(a) {
					count++
				}
			}
			lines = append(lines, fmt.Sprintf("/%d expansion: %d prefixes, %d blocklisted addrs covered",
				bits, res.DynamicPrefixes.Len(), count))
			if bits == 24 {
				b.ReportMetric(float64(count), "dyn-blocklisted-at-24")
			}
		}
	}
	writeArtifact(b, "ablation_expandbits.txt", strings.Join(lines, "\n")+"\n")
}

// BenchmarkAblationKneeThreshold compares the kneedle-derived allocation
// threshold against fixed thresholds 2/4/8/16: low thresholds admit slow
// churners (overcounting dynamic space), high ones miss real pools.
func BenchmarkAblationKneeThreshold(b *testing.B) {
	s, _ := study(b)
	var lines []string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lines = lines[:0]
		knee := ripeatlas.Detect(s.World.RIPELogs, ripeatlas.DetectOptions{})
		lines = append(lines, fmt.Sprintf("knee (=%d): %d daily probes, %d dynamic prefixes",
			knee.KneeThreshold, knee.DailyProbes, knee.DynamicPrefixes.Len()))
		for _, min := range []int{2, 4, 8, 16} {
			res := ripeatlas.Detect(s.World.RIPELogs, ripeatlas.DetectOptions{MinAllocations: min})
			lines = append(lines, fmt.Sprintf("fixed %2d:   %d daily probes, %d dynamic prefixes",
				min, res.DailyProbes, res.DynamicPrefixes.Len()))
		}
		b.ReportMetric(float64(knee.KneeThreshold), "knee")
	}
	writeArtifact(b, "ablation_knee.txt", strings.Join(lines, "\n")+"\n")
}

// BenchmarkAblationCooldown sweeps the crawler's per-IP cool-down: shorter
// cool-downs send far more traffic for the same detections — the paper
// added the 20-minute limit after overwhelming its own network.
func BenchmarkAblationCooldown(b *testing.B) {
	wp := blgen.DefaultParams(1)
	wp.Scale = 0.15
	w := blgen.Generate(wp)
	var lines []string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lines = lines[:0]
		for _, cd := range []time.Duration{5 * time.Minute, 20 * time.Minute, time.Hour} {
			c := runSmallCrawl(b, w, 1, cd)
			st := c.Stats()
			lines = append(lines, fmt.Sprintf("cooldown %6s: %7d msgs sent, %4d NATed, %5d IPs",
				cd, st.MessagesSent, st.NATedIPs, st.UniqueIPs))
			if cd == 20*time.Minute {
				b.ReportMetric(float64(st.MessagesSent), "msgs-at-20m")
			}
		}
	}
	writeArtifact(b, "ablation_cooldown.txt", strings.Join(lines, "\n")+"\n")
}

// runSmallCrawl builds a swarm over w and crawls it for 12 simulated hours.
func runSmallCrawl(b *testing.B, w *blgen.World, seed int64, cooldown time.Duration) *crawler.Crawler {
	b.Helper()
	scope := w.BlocklistedSpace()
	swarm, err := core.BuildSwarm(w, core.SwarmConfig{Loss: 0.28, Seed: seed}, scope.Covers)
	if err != nil {
		b.Fatal(err)
	}
	sock, err := swarm.Net.Listen(netsim.Endpoint{Addr: iputil.MustParseAddr("198.18.0.1"), Port: 9999})
	if err != nil {
		b.Fatal(err)
	}
	c := crawler.New(sock, dht.SimClock(swarm.Clock), crawler.Config{
		Bootstrap: []netsim.Endpoint{swarm.Bootstrap},
		Scope:     scope.Covers,
		Cooldown:  cooldown,
		Seed:      seed,
	})
	swarm.Clock.RunFor(time.Minute)
	c.Start()
	swarm.Clock.RunFor(12 * time.Hour)
	c.Stop()
	return c
}

// BenchmarkAblationChurn sweeps the BitTorrent clients' restart rate:
// port/node-ID churn inflates the naive multi-port signal but the verified
// rule's precision holds — the stale-information robustness claim of §3.1.
func BenchmarkAblationChurn(b *testing.B) {
	wp := blgen.DefaultParams(1)
	wp.Scale = 0.15
	w := blgen.Generate(wp)
	trueNAT := iputil.NewSet()
	for _, n := range w.NATs {
		trueNAT.Add(n.Addr)
	}
	var lines []string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lines = lines[:0]
		for _, rate := range []float64{0, 0.5, 2} {
			scope := w.BlocklistedSpace()
			swarm, err := core.BuildSwarm(w, core.SwarmConfig{
				Loss: 0.28, Seed: 1, RestartsPerDay: rate, ChurnHorizon: 12 * time.Hour,
			}, scope.Covers)
			if err != nil {
				b.Fatal(err)
			}
			sock, err := swarm.Net.Listen(netsim.Endpoint{Addr: iputil.MustParseAddr("198.18.0.1"), Port: 9999})
			if err != nil {
				b.Fatal(err)
			}
			c := crawler.New(sock, dht.SimClock(swarm.Clock), crawler.Config{
				Bootstrap: []netsim.Endpoint{swarm.Bootstrap},
				Scope:     scope.Covers,
				Seed:      1,
			})
			swarm.Clock.RunFor(time.Minute)
			c.Start()
			swarm.Clock.RunFor(12 * time.Hour)
			c.Stop()
			falsePos := 0
			for _, o := range c.NATed() {
				if !trueNAT.Contains(o.Addr) {
					falsePos++
				}
			}
			st := c.Stats()
			lines = append(lines, fmt.Sprintf(
				"restarts/day %.1f: %4d multi-port IPs, %4d verified NATed, %d false positives",
				rate, st.MultiPortIPs, st.NATedIPs, falsePos))
			if rate == 2 {
				b.ReportMetric(float64(falsePos), "false-pos-at-heavy-churn")
				b.ReportMetric(float64(st.MultiPortIPs-st.NATedIPs), "naive-excess")
			}
		}
	}
	writeArtifact(b, "ablation_churn.txt", strings.Join(lines, "\n")+"\n")
}

// BenchmarkAblationVantages sweeps the number of crawler vantage points —
// the coverage improvement §3.1 proposes. More vantages discover more of
// the swarm per unit time and split the reply burden across networks.
func BenchmarkAblationVantages(b *testing.B) {
	wp := blgen.DefaultParams(1)
	wp.Scale = 0.15
	w := blgen.Generate(wp)
	var lines []string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lines = lines[:0]
		for _, vantages := range []int{1, 2, 4} {
			s := core.NewStudyFromWorld(w, core.Config{
				Seed:          1,
				CrawlDuration: 6 * time.Hour,
				Vantages:      vantages,
				SkipICMP:      true,
			})
			if _, err := s.Run(); err != nil {
				b.Fatal(err)
			}
			st := s.CrawlStats
			lines = append(lines, fmt.Sprintf(
				"vantages %d: %5d IPs observed, %4d NATed, %7d msgs (%.0f%% resp)",
				vantages, st.UniqueIPs, st.NATedIPs, st.MessagesSent, st.ResponseRate*100))
			if vantages == 4 {
				b.ReportMetric(float64(st.UniqueIPs), "ips-at-4-vantages")
			}
		}
	}
	writeArtifact(b, "ablation_vantages.txt", strings.Join(lines, "\n")+"\n")
}
