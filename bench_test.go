// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark measures the computation that produces its artifact and, on
// the first run, writes the rendered rows/series to bench_artifacts/ so the
// output can be compared against the paper (see EXPERIMENTS.md).
//
// Run with:
//
//	go test -bench=. -benchmem .
package reuseblock_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/analysis"
	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/core"
	"github.com/reuseblock/reuseblock/internal/obs"
	"github.com/reuseblock/reuseblock/internal/ripeatlas"
	"github.com/reuseblock/reuseblock/internal/stats"
	"github.com/reuseblock/reuseblock/internal/survey"
)

// benchStudy is the shared default-scale study; built once because the full
// crawl is the expensive part and every figure joins against its results.
// Shared between the benchmarks and the golden-file regression test.
var (
	benchOnce   sync.Once
	benchStudy  *core.Study
	benchReport *core.Report
)

func study(tb testing.TB) (*core.Study, *core.Report) {
	tb.Helper()
	benchOnce.Do(func() {
		// Instrumentation is on for the shared study: the golden tests both
		// diff its deterministic metric snapshot (metrics.txt) and prove the
		// report artifacts still match the pre-obs goldens byte for byte.
		s := core.NewStudy(core.Config{Seed: 1, Obs: obs.NewRegistry(), Trace: obs.NewTracer()})
		rep, err := s.Run()
		if err != nil {
			panic(err)
		}
		benchStudy, benchReport = s, rep
	})
	return benchStudy, benchReport
}

// writeArtifact saves rendered output next to the bench results.
func writeArtifact(tb testing.TB, name, content string) {
	tb.Helper()
	dir := "bench_artifacts"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		tb.Fatalf("artifact dir: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		tb.Fatalf("artifact: %v", err)
	}
}

// BenchmarkFigure2ProbeAllocations regenerates Fig 2: per-probe allocation
// counts with the knee threshold, from the raw RIPE connection logs.
func BenchmarkFigure2ProbeAllocations(b *testing.B) {
	s, rep := study(b)
	b.ResetTimer()
	var res *ripeatlas.Result
	for i := 0; i < b.N; i++ {
		res = ripeatlas.Detect(s.World.RIPELogs, ripeatlas.DetectOptions{})
	}
	b.ReportMetric(float64(res.KneeThreshold), "knee-threshold")
	b.ReportMetric(float64(res.TotalProbes), "probes")
	writeArtifact(b, "figure2.txt", rep.Figure2().Render())
}

// BenchmarkFigure3ASOverlapCDF regenerates Fig 3: the per-AS cumulative
// distribution of blocklisted, BitTorrent and RIPE addresses.
func BenchmarkFigure3ASOverlapCDF(b *testing.B) {
	s, _ := study(b)
	b.ResetTimer()
	var o *analysis.ASOverlap
	for i := 0; i < b.N; i++ {
		o = analysis.ComputeASOverlap(s.Inputs)
	}
	b.ReportMetric(stats.Fraction(o.ASesWithBT, o.ASesWithBlocklisted)*100, "%ASes-with-BT")
	b.ReportMetric(stats.Fraction(o.ASesWithRIPE, o.ASesWithBlocklisted)*100, "%ASes-with-RIPE")
	writeArtifact(b, "figure3.txt", o.Figure3().Render())
}

// BenchmarkFigure4DetectionFunnel regenerates the Fig 4 funnel counts.
func BenchmarkFigure4DetectionFunnel(b *testing.B) {
	s, rep := study(b)
	stages := analysis.RIPEStages{
		SameAS:   s.RIPE.SameASAddresses.Slash24s(),
		Frequent: s.RIPE.FrequentAddresses.Slash24s(),
		Daily:    s.RIPE.DynamicPrefixes,
	}
	b.ResetTimer()
	var f *analysis.Funnel
	for i := 0; i < b.N; i++ {
		f = analysis.ComputeFunnel(s.Inputs, s.CrawlStats.UniqueIPs, stages)
	}
	b.ReportMetric(float64(f.NATedIPs), "NATed-IPs")
	b.ReportMetric(float64(f.DailyBlocklisted), "daily-blocklisted")
	writeArtifact(b, "figure4.txt", rep.Funnel.Table().Render())
}

// BenchmarkFigure5NATedPerBlocklist regenerates Fig 5.
func BenchmarkFigure5NATedPerBlocklist(b *testing.B) {
	s, _ := study(b)
	b.ResetTimer()
	var r *analysis.PerListReuse
	for i := 0; i < b.N; i++ {
		r = analysis.ComputePerListReuse(s.Inputs)
	}
	b.ReportMetric(float64(r.NATedListings), "NATed-listings")
	b.ReportMetric(float64(r.FeedsWithoutNATed), "feeds-without")
	writeArtifact(b, "figure5.txt", r.Figure5().Render())
}

// BenchmarkFigure6DynamicPerBlocklist regenerates Fig 6 including the Cai et
// al. ICMP baseline series.
func BenchmarkFigure6DynamicPerBlocklist(b *testing.B) {
	s, _ := study(b)
	b.ResetTimer()
	var r *analysis.PerListReuse
	for i := 0; i < b.N; i++ {
		r = analysis.ComputePerListReuse(s.Inputs)
	}
	b.ReportMetric(float64(r.DynamicListings), "dynamic-listings")
	b.ReportMetric(float64(r.CaiDynamicListings), "cai-listings")
	writeArtifact(b, "figure6.txt", r.Figure6().Render())
}

// BenchmarkFigure7DurationCDF regenerates Fig 7's duration distributions.
func BenchmarkFigure7DurationCDF(b *testing.B) {
	s, _ := study(b)
	b.ResetTimer()
	var d *analysis.Durations
	for i := 0; i < b.N; i++ {
		d = analysis.ComputeDurations(s.Inputs)
	}
	b.ReportMetric(d.AllMean, "all-mean-days")
	b.ReportMetric(d.NATedMean, "nat-mean-days")
	b.ReportMetric(d.DynamicMean, "dyn-mean-days")
	writeArtifact(b, "figure7.txt", d.Figure7().Render())
}

// BenchmarkFigure8NATUserCDF regenerates Fig 8's users-behind-NAT CDF.
func BenchmarkFigure8NATUserCDF(b *testing.B) {
	s, _ := study(b)
	b.ResetTimer()
	var n *analysis.NATUsers
	for i := 0; i < b.N; i++ {
		n = analysis.ComputeNATUsers(s.Inputs)
	}
	b.ReportMetric(n.ExactlyTwo*100, "%exactly-2")
	b.ReportMetric(float64(n.Max), "max-users")
	writeArtifact(b, "figure8.txt", n.Figure8().Render())
}

// BenchmarkFigure9OperatorBlocklistTypes regenerates Fig 9.
func BenchmarkFigure9OperatorBlocklistTypes(b *testing.B) {
	_, rep := study(b)
	responses := survey.StandardResponses(1)
	b.ResetTimer()
	var usage []survey.TypeUsage
	for i := 0; i < b.N; i++ {
		usage = survey.TypesAmongAffected(responses)
	}
	if len(usage) > 0 {
		b.ReportMetric(usage[len(usage)-1].Percent*100, "%top-type")
	}
	writeArtifact(b, "figure9.txt", rep.Figure9().Render())
}

// BenchmarkTable1SurveySummary regenerates Table 1.
func BenchmarkTable1SurveySummary(b *testing.B) {
	_, rep := study(b)
	responses := survey.StandardResponses(1)
	b.ResetTimer()
	var sum survey.Summary
	for i := 0; i < b.N; i++ {
		sum = survey.Summarize(responses)
	}
	b.ReportMetric(sum.ExternalPct*100, "%external")
	b.ReportMetric(sum.DirectBlockPct*100, "%direct-block")
	writeArtifact(b, "table1.txt", rep.Table1().Render())
}

// BenchmarkTable2BlocklistRegistry regenerates Table 2.
func BenchmarkTable2BlocklistRegistry(b *testing.B) {
	_, rep := study(b)
	b.ResetTimer()
	var counts []blocklist.MaintainerCount
	for i := 0; i < b.N; i++ {
		reg := blocklist.StandardRegistry()
		counts = reg.MaintainerCounts()
	}
	b.ReportMetric(float64(len(counts)), "maintainers")
	writeArtifact(b, "table2.txt", rep.Table2().Render())
}

// BenchmarkSection4CrawlStats measures a full (small-world) crawl: swarm
// construction plus the simulated crawl that yields the §4 statistics.
func BenchmarkSection4CrawlStats(b *testing.B) {
	_, rep := study(b)
	wp := blgen.DefaultParams(1)
	wp.Scale = 0.1
	w := blgen.Generate(wp)
	b.ResetTimer()
	var st core.Study
	_ = st
	for i := 0; i < b.N; i++ {
		s := core.NewStudyFromWorld(w, core.Config{Seed: int64(i + 1), CrawlDuration: 12 * time.Hour, SkipICMP: true})
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
	writeArtifact(b, "section4.txt", rep.CrawlStatsTable().Render())
}

// BenchmarkStudyMetricsSnapshot measures rendering the deterministic metric
// snapshot of the shared default study and writes it as a golden artifact:
// every count the instrumented pipeline records, byte-stable across runs and
// worker settings.
func BenchmarkStudyMetricsSnapshot(b *testing.B) {
	s, _ := study(b)
	b.ResetTimer()
	var text string
	for i := 0; i < b.N; i++ {
		text = s.Config.Obs.RenderText(false)
	}
	b.ReportMetric(float64(len(text)), "snapshot-bytes")
	writeArtifact(b, "metrics.txt", text)
}

// BenchmarkSection5TopListConcentration regenerates the §5 top-10
// concentration statistics.
func BenchmarkSection5TopListConcentration(b *testing.B) {
	s, _ := study(b)
	b.ResetTimer()
	var natShare, dynShare float64
	for i := 0; i < b.N; i++ {
		r := analysis.ComputePerListReuse(s.Inputs)
		natShare = r.Top10NATedShare
		dynShare = r.Top10DynamicShare
	}
	b.ReportMetric(natShare*100, "%top10-NATed")
	b.ReportMetric(dynShare*100, "%top10-dynamic")
	r := analysis.ComputePerListReuse(s.Inputs)
	content := fmt.Sprintf("top NATed feeds: %v\ntop dynamic feeds: %v\n",
		r.TopNATedFeeds, r.TopDynamicFeeds)
	writeArtifact(b, "section5.txt", content)
}

// BenchmarkFullStudy measures a complete end-to-end run at reduced scale —
// the cost of reproducing the entire paper once.
func BenchmarkFullStudy(b *testing.B) {
	wp := blgen.DefaultParams(1)
	wp.Scale = 0.1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := core.NewStudy(core.Config{
			Seed:          1,
			World:         &wp,
			CrawlDuration: 12 * time.Hour,
		})
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
