// Property suite: every generated world — not just the golden seed — must
// satisfy the pipeline's metamorphic relations and ground-truth oracles.
// The default run samples a handful of worlds so `go test ./...` stays
// fast; `-tags slow` (make verify-props) sweeps ≥ 50 seeds across worker
// counts and fault scenarios. On failure the suite shrinks the world spec
// toward the calibrated default before reporting, so the log names the
// tamest world that still breaks the property.
package reuseblock_test

import (
	"testing"

	"github.com/reuseblock/reuseblock/internal/analysis"
	"github.com/reuseblock/reuseblock/internal/faults"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/testkit"
)

// checkWorldProperties runs every relation and oracle against one generated
// world, folding its scores into stats (which may be nil). It returns
// ("degenerate", nil) for worlds that cannot host a crawl — the sweep skips
// those but counts them — and (relation, err) naming the first violated
// invariant otherwise.
func checkWorldProperties(spec testkit.WorldSpec, stats *testkit.SweepStats) (*testkit.StudyRun, string, error) {
	base, err := testkit.RunStudy(spec, 1, nil)
	if testkit.IsDegenerateWorld(err) {
		if stats != nil {
			stats.Degenerate++
		}
		return nil, "degenerate", nil
	}
	if err != nil {
		return nil, "run", err
	}
	if stats != nil {
		stats.AddStudy(base.Report)
	}

	// Seed determinism: an identical second run renders the same bytes.
	again, err := testkit.RunStudy(spec, 1, nil)
	if err != nil {
		return nil, "run", err
	}
	if err := testkit.CheckIdenticalRenders("seed-determinism", base.Rendered, again.Rendered); err != nil {
		return nil, "seed-determinism", err
	}

	// Worker invariance: the parallel pipeline renders the same bytes.
	par, err := testkit.RunStudy(spec, 4, nil)
	if err != nil {
		return nil, "run", err
	}
	if err := testkit.CheckIdenticalRenders("worker-invariance", base.Rendered, par.Rendered); err != nil {
		return nil, "worker-invariance", err
	}

	// Ground-truth oracles.
	o := testkit.Oracle{World: base.Study.World}
	if err := o.CheckNATObservations(base.Study.NATed); err != nil {
		return nil, "nat-lower-bound", err
	}
	if err := o.CheckDynamicDetection(base.Study.RIPE); err != nil {
		return nil, "ripe-detection", err
	}
	if err := o.CheckDurations(base.Report.Durations); err != nil {
		return nil, "duration-windows", err
	}
	if err := o.CheckScores(base.Report); err != nil {
		return nil, "score-bands", err
	}
	if err := testkit.CheckKneeStability(base.Study.RIPE.AllocationCounts, 3); err != nil {
		return nil, "knee-stability", err
	}

	// Feed-permutation invariance at the analysis layer: rebuild the
	// world's collection with feeds rotated and rerun the Fig 5/6 join.
	// (End-to-end permutation would change the world itself — feed RNG
	// streams are keyed by feed index — so the relation lives here.)
	if err := checkPermutationInvariance(base); err != nil {
		return nil, "feed-permutation", err
	}

	// Listing monotonicity: one extra reused listing never decreases any
	// reuse count and never makes a feed *lose* its reused addresses.
	if err := checkListingMonotonicity(base); err != nil {
		return nil, "listing-monotonicity", err
	}

	return base, "", nil
}

func checkPermutationInvariance(base *testkit.StudyRun) error {
	col := base.Study.World.Collection
	n := col.Registry().Len()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = (i + n/2 + 1) % n
	}
	permuted, err := testkit.PermuteCollection(col, perm)
	if err != nil {
		return err
	}
	in := *base.Study.Inputs
	in.Collection = permuted
	return testkit.CheckPerListPermutation(
		base.Report.PerList, analysis.ComputePerListReuse(&in), perm)
}

func checkListingMonotonicity(base *testkit.StudyRun) error {
	col := base.Study.World.Collection
	clone, err := testkit.CloneCollection(col)
	if err != nil {
		return err
	}
	// Add one NATed address to the first feed and day where it is absent.
	var addr iputil.Addr
	feed, day := -1, 0
	for a := range base.Study.Inputs.NATUsers {
		for fi := 0; fi < col.Registry().Len() && feed < 0; fi++ {
			if !col.Present(fi, 0, a) {
				addr, feed = a, fi
			}
		}
		if feed >= 0 {
			break
		}
	}
	if feed < 0 {
		return nil // every feed lists every NATed address on day 0 — nothing to add
	}
	one := iputil.NewSet()
	one.Add(addr)
	if err := clone.Record(day, feed, one); err != nil {
		return err
	}
	in := *base.Study.Inputs
	in.Collection = clone
	return testkit.CheckPerListMonotone(base.Report.PerList, analysis.ComputePerListReuse(&in))
}

// checkFaultTolerance runs the bursty scenario against the same spec and
// holds the NAT recall inside the pinned tolerance band of the fault-free
// run (same band the seed-1 resilience suite pins for bursty).
func checkFaultTolerance(spec testkit.WorldSpec, base *testkit.StudyRun) error {
	scn, err := faults.Lookup("bursty")
	if err != nil {
		return err
	}
	faulted, err := testkit.RunStudy(spec, 1, scn)
	if err != nil {
		return err
	}
	return testkit.CheckToleranceBand("fault-tolerance",
		base.Report.NATScore.Recall, faulted.Report.NATScore.Recall, 0.15)
}

// reportShrunk shrinks a failing spec to the tamest still-failing world and
// fails the test with both specs in the log.
func reportShrunk(t *testing.T, spec testkit.WorldSpec, relation string, err error) {
	t.Helper()
	shrunk := testkit.Shrink(spec, func(s testkit.WorldSpec) bool {
		_, rel, serr := checkWorldProperties(s, nil)
		return serr != nil && rel == relation
	}, 40)
	t.Fatalf("%s violated\n  spec:   %s\n  shrunk: %s\n  error:  %v", relation, spec, shrunk, err)
}

// TestWorldProperties is the fast slice of the property sweep: a few
// generated worlds through every relation and oracle on each `go test`.
func TestWorldProperties(t *testing.T) {
	seeds := []int64{101, 102, 103, 104}
	if testing.Short() {
		seeds = seeds[:1]
	}
	stats := &testkit.SweepStats{}
	for _, genSeed := range seeds {
		spec := testkit.GenWorldSpec(genSeed)
		t.Logf("world %d: %s", genSeed, spec)
		_, rel, err := checkWorldProperties(spec, stats)
		if rel == "degenerate" {
			continue
		}
		if err != nil {
			reportShrunk(t, spec, rel, err)
		}
	}
	if stats.Worlds == 0 {
		t.Fatalf("all %d generated worlds were degenerate — generator regression", len(seeds))
	}
	if err := stats.CheckEnsemble(); err != nil {
		t.Fatal(err)
	}
}

// TestWorldFaultTolerance holds one generated world's bursty-scenario recall
// inside the pinned band. Kept out of TestWorldProperties so the fast sweep
// above stays a pure fault-free relation check.
func TestWorldFaultTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("fault band is covered per-seed by the resilience suite in short mode")
	}
	spec := testkit.GenWorldSpec(101)
	base, err := testkit.RunStudy(spec, 1, nil)
	if testkit.IsDegenerateWorld(err) {
		t.Skip("world 101 is degenerate")
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := checkFaultTolerance(spec, base); err != nil {
		t.Fatalf("bursty tolerance band: %v", err)
	}
}
