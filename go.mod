module github.com/reuseblock/reuseblock

go 1.22
