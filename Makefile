GO ?= go

.PHONY: all build vet test ci bench bench-obs bench-serve report fuzz clean verify-props coverage e2e e2e-smoke

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	$(GO) vet -tags "e2e slow" ./...

test:
	$(GO) test -race ./...

# What the CI workflow runs: -short skips the full default-scale golden
# study but keeps the 4-worker equivalence test that exercises every
# parallel fan-out under the race detector.
ci: build vet
	$(GO) test -race -short ./...

# Regenerates every paper table/figure into bench_artifacts/ (including the
# deterministic metric snapshot metrics.txt), the worker-scaling curve in
# BENCH_parallel.json, and the instrumentation-overhead curve in
# BENCH_obs.json.
bench:
	$(GO) test -bench=. -benchmem .

# Just the observability overhead: the BenchmarkStudyParallel-shaped study
# with instrumentation off vs on, recorded to BENCH_obs.json.
bench-obs:
	$(GO) test -bench=BenchmarkStudyObs -benchmem -run='^$$' .

# Serving-layer benchmarks: the compiled-snapshot reuseapi server against a
# locked-map replica of the old design on /v1/check and /v1/list, plus batch
# throughput, recorded to BENCH_serve.json.
bench-serve:
	$(GO) test -bench=BenchmarkServe -benchmem -run='^$$' .

# Paper-scale footprint ratchet: compact sharded swarms at world scales 1,
# 10 and 100, rows appended to BENCH_scale.json; fails if bytes/host at
# scale >= 10 is not 5x under the pre-refactor baseline. Set
# SCALE_BENCH_MAX=10 for a quick local pass without the 950K-host world.
bench-scale:
	$(GO) test -bench=BenchmarkStudyScale -benchtime=1x -run='^$$' -timeout 50m .

# Full default-scale study: every table and figure on stdout.
report:
	$(GO) run ./cmd/blreport

fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/bencode/
	$(GO) test -fuzz FuzzUnmarshal -fuzztime 30s ./internal/krpc/
	$(GO) test -fuzz FuzzParseLog -fuzztime 30s ./internal/crawler/

# Property-based verification: the fast metamorphic suite, the per-package
# property tests, then the slow 50-world seed sweep (oracles, determinism,
# worker invariance and fault-tolerance bands per world). Tune the sweep with
# TESTKIT_SWEEP_COUNT / TESTKIT_SWEEP_START / TESTKIT_SWEEP_FAULTS.
verify-props:
	$(GO) test -run 'TestWorldProperties|TestWorldFaultTolerance' .
	$(GO) test ./internal/testkit/ ./internal/kneedle/ ./internal/netsim/ ./internal/faults/ ./internal/ripeatlas/ ./internal/crawler/
	$(GO) test -tags slow -run TestPropertySweep -timeout 30m -v .

# Coverage ratchet: total -short coverage must stay above the committed
# floor in scripts/coverage_floor.txt.
coverage:
	./scripts/coverage_ratchet.sh

# End-to-end scenario suite: every scenario builds the cmd binaries and
# boots crawler fleet + pipeline + blserve as real processes over loopback,
# asserting on the served API against the ground-truth oracles. The load-gen
# scenario appends its latency record to BENCH_e2e.json (override the path
# with E2E_BENCH_OUT). On failure, process logs land under E2E_LOG_DIR.
e2e:
	$(GO) test -tags e2e -v -timeout 15m ./internal/e2e/

# The smoke subset (Smoke-marked scenarios only) under the race detector —
# what CI runs on every push.
e2e-smoke:
	$(GO) test -tags e2e -race -short -timeout 10m ./internal/e2e/

# bench_artifacts/ holds the committed golden files; regenerate with
# `make bench` rather than deleting.
clean:
	rm -f *.test *.out
