GO ?= go

.PHONY: all build vet test bench report fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Regenerates every paper table/figure into bench_artifacts/.
bench:
	$(GO) test -bench=. -benchmem .

# Full default-scale study: every table and figure on stdout.
report:
	$(GO) run ./cmd/blreport

fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/bencode/
	$(GO) test -fuzz FuzzUnmarshal -fuzztime 30s ./internal/krpc/
	$(GO) test -fuzz FuzzParseLog -fuzztime 30s ./internal/crawler/

clean:
	rm -rf bench_artifacts
