GO ?= go

.PHONY: all build vet test ci bench bench-obs report fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# What the CI workflow runs: -short skips the full default-scale golden
# study but keeps the 4-worker equivalence test that exercises every
# parallel fan-out under the race detector.
ci: build vet
	$(GO) test -race -short ./...

# Regenerates every paper table/figure into bench_artifacts/ (including the
# deterministic metric snapshot metrics.txt), the worker-scaling curve in
# BENCH_parallel.json, and the instrumentation-overhead curve in
# BENCH_obs.json.
bench:
	$(GO) test -bench=. -benchmem .

# Just the observability overhead: the BenchmarkStudyParallel-shaped study
# with instrumentation off vs on, recorded to BENCH_obs.json.
bench-obs:
	$(GO) test -bench=BenchmarkStudyObs -benchmem -run='^$$' .

# Full default-scale study: every table and figure on stdout.
report:
	$(GO) run ./cmd/blreport

fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/bencode/
	$(GO) test -fuzz FuzzUnmarshal -fuzztime 30s ./internal/krpc/
	$(GO) test -fuzz FuzzParseLog -fuzztime 30s ./internal/crawler/

# bench_artifacts/ holds the committed golden files; regenerate with
# `make bench` rather than deleting.
clean:
	rm -f *.test *.out
