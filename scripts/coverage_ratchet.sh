#!/bin/sh
# Coverage ratchet: fail if total -short statement coverage drops below the
# committed floor in scripts/coverage_floor.txt. The floor only moves up —
# when real coverage has grown comfortably past it, raise the floor in the
# same change that grew it.
set -eu
cd "$(dirname "$0")/.."
floor=$(cat scripts/coverage_floor.txt)
profile=$(mktemp)
trap 'rm -f "$profile"' EXIT
go test -short -count=1 -coverprofile="$profile" ./... > /dev/null
total=$(go tool cover -func="$profile" | awk '/^total:/ {gsub("%","",$3); print $3}')
awk -v t="$total" -v f="$floor" 'BEGIN {
  if (t + 0 < f + 0) {
    printf "FAIL: total coverage %.1f%% fell below the committed floor %.1f%%\n", t, f
    exit 1
  }
  printf "coverage %.1f%% (floor %.1f%%)\n", t, f
  if (t - f >= 2.0)
    printf "note: coverage has grown; consider raising scripts/coverage_floor.txt to %.1f\n", t - 0.5
}'
