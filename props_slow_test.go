//go:build slow

// Slow property sweep: ≥ 50 generated worlds through every metamorphic
// relation and oracle, plus the bursty fault matrix on each viable world.
// Run via `make verify-props` or the nightly slow-tests workflow. The sweep
// is parameterized by environment so CI can shard it:
//
//	TESTKIT_SWEEP_COUNT  worlds to generate (default 50)
//	TESTKIT_SWEEP_START  first generator seed (default 200)
//	TESTKIT_SWEEP_FAULTS comma-separated fault scenarios to run per world
//	                     in addition to fault-free (default "bursty";
//	                     "none" disables the fault stage)
package reuseblock_test

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"github.com/reuseblock/reuseblock/internal/faults"
	"github.com/reuseblock/reuseblock/internal/testkit"
)

func sweepEnvInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			panic(name + ": " + v)
		}
		return n
	}
	return def
}

func sweepEnvList(name, def string) []string {
	v := os.Getenv(name)
	if v == "" {
		v = def
	}
	if v == "none" {
		return nil
	}
	return strings.Split(v, ",")
}

// TestPropertySweep is the acceptance gate: zero invariant violations over
// the whole generated-world sample. Violations are collected per seed (not
// fail-fast) so one bad world does not mask another, and each is shrunk
// before reporting.
func TestPropertySweep(t *testing.T) {
	count := sweepEnvInt("TESTKIT_SWEEP_COUNT", 50)
	start := sweepEnvInt("TESTKIT_SWEEP_START", 200)
	scenarios := sweepEnvList("TESTKIT_SWEEP_FAULTS", "bursty")

	stats := &testkit.SweepStats{}
	violations := 0
	for i := 0; i < count; i++ {
		genSeed := int64(start + i)
		spec := testkit.GenWorldSpec(genSeed)
		base, rel, err := checkWorldProperties(spec, stats)
		if rel == "degenerate" {
			t.Logf("world %d: degenerate (skipped): %s", genSeed, spec)
			continue
		}
		if err != nil {
			violations++
			shrunk := testkit.Shrink(spec, func(s testkit.WorldSpec) bool {
				_, r, serr := checkWorldProperties(s, nil)
				return serr != nil && r == rel
			}, 30)
			t.Errorf("world %d: %s violated\n  spec:   %s\n  shrunk: %s\n  error:  %v",
				genSeed, rel, spec, shrunk, err)
			continue
		}

		// Fault matrix: each scenario must stay deterministic, worker
		// invariant, and inside the recall tolerance band.
		for _, name := range scenarios {
			scn, lerr := faults.Lookup(name)
			if lerr != nil {
				t.Fatalf("world %d: %v", genSeed, lerr)
			}
			seq, ferr := testkit.RunStudy(spec, 1, scn)
			if ferr != nil {
				violations++
				t.Errorf("world %d: %s run failed: %v", genSeed, name, ferr)
				continue
			}
			par, ferr := testkit.RunStudy(spec, 4, scn)
			if ferr != nil {
				violations++
				t.Errorf("world %d: %s workers=4 run failed: %v", genSeed, name, ferr)
				continue
			}
			if verr := testkit.CheckIdenticalRenders("fault-worker-invariance", seq.Rendered, par.Rendered); verr != nil {
				violations++
				t.Errorf("world %d under %s: %v\n  spec: %s", genSeed, name, verr, spec)
			}
			if verr := testkit.CheckToleranceBand("fault-tolerance",
				base.Report.NATScore.Recall, seq.Report.NATScore.Recall, faultRecallBand(name)); verr != nil {
				violations++
				t.Errorf("world %d under %s: %v\n  spec: %s", genSeed, name, verr, spec)
			}
		}
	}
	t.Logf("sweep: %d worlds, %d degenerate, %d recall samples, %d violations",
		stats.Worlds, stats.Degenerate, len(stats.Recalls), violations)
	if stats.Worlds == 0 {
		t.Fatal("every generated world was degenerate — generator regression")
	}
	if err := stats.CheckEnsemble(); err != nil {
		t.Error(err)
	}
}

// faultRecallBand mirrors the per-scenario tolerance bands the seed-1
// resilience suite pins, loosened slightly because generated worlds sit in
// harsher corners of the parameter space than the calibrated seed-1 world.
func faultRecallBand(name string) float64 {
	switch name {
	case "storm":
		return 0.25
	case "blackout":
		return 0.30
	case "hostile":
		return 0.35
	default:
		return 0.20
	}
}
